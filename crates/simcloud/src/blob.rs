//! S3-like regional object storage.
//!
//! DynamoDB items are capped at 400 KB; real deployments pass large
//! intermediate payloads (audio, images, video chunks) through object
//! storage and keep only references in the KV store. The engine uses this
//! service for payloads above [`BLOB_THRESHOLD_BYTES`], charging S3-style
//! request fees plus transfer time; small payloads stay on the KV path.

use std::collections::HashMap;

use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::latency::LatencyModel;

/// Payloads above this size go through the blob store instead of the KV
/// store (DynamoDB's 400 KB item limit, minus envelope headroom).
pub const BLOB_THRESHOLD_BYTES: f64 = 256.0 * 1024.0;

/// Published S3-style request prices, USD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlobPricing {
    /// Per PUT request.
    pub per_put: f64,
    /// Per GET request.
    pub per_get: f64,
}

impl Default for BlobPricing {
    fn default() -> Self {
        BlobPricing {
            per_put: 5.0 / 1.0e3 / 1.0e3 * 1000.0, // $0.005 per 1k PUTs
            per_get: 0.4 / 1.0e3 / 1.0e3 * 1000.0, // $0.0004 per 1k GETs
        }
    }
}

/// Outcome of a blob operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobAccess {
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Request cost, USD.
    pub cost_usd: f64,
}

/// Per-region operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlobOpCounts {
    /// PUT requests served.
    pub puts: u64,
    /// GET requests served.
    pub gets: u64,
}

/// Base service-side latency of a blob request, seconds.
const BLOB_OP_BASE_S: f64 = 0.012;

/// Cap on recycled key strings retained; beyond this they are dropped.
const BLOB_FREE_LIST_CAP: usize = 256;

/// The object-storage service: one logical bucket per region.
#[derive(Debug, Default)]
pub struct BlobStore {
    /// `(region, key) → size`; contents are irrelevant to the simulation.
    objects: HashMap<(RegionId, String), f64>,
    ops: HashMap<RegionId, BlobOpCounts>,
    /// Request pricing.
    pub pricing: BlobPricing,
    /// Reusable `(region, key)` lookup buffer so reads allocate nothing.
    lookup: (RegionId, String),
    /// Recycled key strings from [`BlobStore::reclaim`] /
    /// [`BlobStore::delete`], reused by first-time PUTs.
    free: Vec<String>,
}

impl BlobStore {
    /// Creates an empty store with default pricing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewrites the reusable lookup buffer to `(region, key)`.
    fn set_lookup(&mut self, bucket_region: RegionId, key: &str) {
        self.lookup.0 = bucket_region;
        self.lookup.1.clear();
        self.lookup.1.push_str(key);
    }

    /// Uploads an object of `bytes` into `bucket_region`'s bucket from
    /// `from` (cross-region PUTs pay the inter-region path).
    pub fn put(
        &mut self,
        bucket_region: RegionId,
        key: &str,
        bytes: f64,
        from: RegionId,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> BlobAccess {
        self.set_lookup(bucket_region, key);
        if let Some(slot) = self.objects.get_mut(&self.lookup) {
            *slot = bytes;
        } else {
            let owned = match self.free.pop() {
                Some(mut s) => {
                    s.clear();
                    s.push_str(key);
                    s
                }
                None => key.to_string(),
            };
            self.objects.insert((bucket_region, owned), bytes);
        }
        let c = self.ops.entry(bucket_region).or_default();
        c.puts += 1;
        BlobAccess {
            latency_s: BLOB_OP_BASE_S
                + latency.sample_transfer_seconds(from, bucket_region, bytes, rng),
            cost_usd: self.pricing.per_put,
        }
    }

    /// Downloads an object from `bucket_region` into `to`.
    ///
    /// Returns `None` when the object does not exist.
    pub fn get(
        &mut self,
        bucket_region: RegionId,
        key: &str,
        to: RegionId,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> Option<BlobAccess> {
        self.set_lookup(bucket_region, key);
        let bytes = *self.objects.get(&self.lookup)?;
        let c = self.ops.entry(bucket_region).or_default();
        c.gets += 1;
        Some(BlobAccess {
            latency_s: BLOB_OP_BASE_S
                + latency.sample_transfer_seconds(bucket_region, to, bytes, rng),
            cost_usd: self.pricing.per_get,
        })
    }

    /// Size of a stored object, if present.
    pub fn size_of(&self, bucket_region: RegionId, key: &str) -> Option<f64> {
        self.objects.get(&(bucket_region, key.to_string())).copied()
    }

    /// Deletes an object, returning whether it existed.
    pub fn delete(&mut self, bucket_region: RegionId, key: &str) -> bool {
        self.set_lookup(bucket_region, key);
        match self.objects.remove_entry(&self.lookup) {
            Some(((_, owned), _)) => {
                self.recycle(owned);
                true
            }
            None => false,
        }
    }

    /// Removes an object without billing (lifecycle-expiry style garbage
    /// collection of consumed intermediates), recycling the key string.
    pub fn reclaim(&mut self, bucket_region: RegionId, key: &str) -> bool {
        self.set_lookup(bucket_region, key);
        match self.objects.remove_entry(&self.lookup) {
            Some(((_, owned), _)) => {
                self.recycle(owned);
                true
            }
            None => false,
        }
    }

    fn recycle(&mut self, owned: String) {
        if self.free.len() < BLOB_FREE_LIST_CAP {
            self.free.push(owned);
        }
    }

    /// Operation counters for a region.
    pub fn ops(&self, region: RegionId) -> BlobOpCounts {
        self.ops.get(&region).copied().unwrap_or_default()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, LatencyModel, BlobStore, Pcg32) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        (cat, lm, BlobStore::new(), Pcg32::seed(1))
    }

    #[test]
    fn put_then_get_round_trips() {
        let (cat, lm, mut s, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let put = s.put(r, "k", 5e6, r, &lm, &mut rng);
        assert!(put.latency_s > 0.0);
        assert!(put.cost_usd > 0.0);
        let get = s.get(r, "k", r, &lm, &mut rng).unwrap();
        assert!(get.latency_s > 0.0);
        assert_eq!(s.size_of(r, "k"), Some(5e6));
        assert_eq!(s.ops(r), BlobOpCounts { puts: 1, gets: 1 });
    }

    #[test]
    fn missing_object_returns_none() {
        let (cat, lm, mut s, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        assert!(s.get(r, "nope", r, &lm, &mut rng).is_none());
    }

    #[test]
    fn large_transfer_dominates_latency() {
        let (cat, lm, mut s, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        s.put(west, "big", 100e6, east, &lm, &mut rng);
        let get = s.get(west, "big", east, &lm, &mut rng).unwrap();
        // 100 MB at 30 MB/s inter-region ≈ 3+ seconds.
        assert!(get.latency_s > 2.0, "latency {}", get.latency_s);
    }

    #[test]
    fn delete_removes_object() {
        let (cat, lm, mut s, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        s.put(r, "k", 1e3, r, &lm, &mut rng);
        assert!(s.delete(r, "k"));
        assert!(!s.delete(r, "k"));
        assert!(s.get(r, "k", r, &lm, &mut rng).is_none());
    }

    #[test]
    fn buckets_are_regional() {
        let (cat, lm, mut s, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        s.put(east, "k", 1e3, east, &lm, &mut rng);
        assert!(s.get(west, "k", west, &lm, &mut rng).is_none());
        assert!(s.get(east, "k", east, &lm, &mut rng).is_some());
    }
}
