//! Virtual time and a generic discrete-event queue.
//!
//! Simulation time is measured in `f64` seconds since the simulation epoch.
//! Experiments anchor the epoch at a wall-clock instant (the paper's carbon
//! data period starts 2023-10-15 00:00 UTC) so that hour-of-day and
//! day-of-week derivations are meaningful.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Seconds since the simulation epoch.
pub type SimTime = f64;

/// Seconds in one hour.
pub const HOUR: f64 = 3600.0;
/// Seconds in one day.
pub const DAY: f64 = 86_400.0;
/// Seconds in one week.
pub const WEEK: f64 = 7.0 * DAY;

/// Derives the hour-of-day `0..24` for a simulation time, assuming the
/// epoch falls on a midnight.
pub fn hour_of_day(t: SimTime) -> usize {
    let t = t.max(0.0);
    ((t % DAY) / HOUR) as usize % 24
}

/// Derives the whole hours elapsed since the epoch.
pub fn hours_since_epoch(t: SimTime) -> usize {
    (t.max(0.0) / HOUR) as usize
}

/// Derives the day index since the epoch.
pub fn day_of_sim(t: SimTime) -> usize {
    (t.max(0.0) / DAY) as usize
}

/// A monotone virtual clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time; virtual time is
    /// monotone.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now - 1e-9,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = self.now.max(t);
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::set_sim_now(self.now);
            caribou_telemetry::count("clock.advance", 1);
        }
    }

    /// Advances the clock by a non-negative duration.
    pub fn advance_by(&mut self, dt: f64) {
        assert!(dt >= 0.0, "negative duration");
        self.now += dt;
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::set_sim_now(self.now);
            caribou_telemetry::count("clock.advance", 1);
        }
    }
}

struct HeapEntry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering, with
        // insertion order (`seq`) breaking ties for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-first event queue.
///
/// Ties on time are broken by insertion order, so simulation outcomes do
/// not depend on heap internals.
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at time `t`.
    ///
    /// # Invariant
    ///
    /// Event times must be finite: the heap orders entries with
    /// `f64::total_cmp`, under which NaN sorts *after* every number — a
    /// NaN-timed event would sink to the back of the queue and silently
    /// reorder the simulation instead of failing. Debug builds assert;
    /// release builds saturate NaN and `+inf` to `f64::MAX` and `-inf` to
    /// `f64::MIN`, keeping the ordering total and deterministic.
    pub fn push(&mut self, t: SimTime, payload: T) {
        debug_assert!(t.is_finite(), "non-finite event time {t}");
        let t = if t.is_finite() {
            t
        } else if t == f64::NEG_INFINITY {
            f64::MIN
        } else {
            // NaN and +inf both clamp to the far future.
            f64::MAX
        };
        self.heap.push(HeapEntry {
            time: t,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Drains every event scheduled at exactly the earliest pending time
    /// into `batch` (in insertion order), returning that time. Same-tick
    /// fan-outs are delivered with one heap inspection per event instead
    /// of interleaved peek/pop cycles, and the caller reuses `batch`
    /// across ticks, so the consumer loop allocates nothing.
    pub fn pop_batch(&mut self, batch: &mut Vec<T>) -> Option<SimTime> {
        batch.clear();
        let t = self.peek_time()?;
        while let Some(head) = self.heap.peek() {
            if head.time != t {
                break;
            }
            batch.push(self.heap.pop().expect("peeked entry exists").payload);
        }
        Some(t)
    }

    /// Empties the queue, retaining its allocation for reuse. The
    /// insertion-order counter restarts, so a cleared queue behaves
    /// exactly like a fresh one.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new();
        c.advance_to(5.0);
        c.advance_by(2.5);
        assert_eq!(c.now(), 7.5);
    }

    #[test]
    #[should_panic]
    fn clock_rejects_backwards() {
        let mut c = SimClock::new();
        c.advance_to(5.0);
        c.advance_to(1.0);
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn queue_peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(4.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn queue_pop_batch_groups_same_tick() {
        let mut q = EventQueue::new();
        q.push(2.0, "late");
        q.push(1.0, "a");
        q.push(1.0, "b");
        q.push(1.0, "c");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(1.0));
        assert_eq!(batch, vec!["a", "b", "c"], "insertion order preserved");
        assert_eq!(q.pop_batch(&mut batch), Some(2.0));
        assert_eq!(batch, vec!["late"]);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn queue_clear_retains_capacity_and_resets_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "a");
        q.push(2.0, "b");
        q.clear();
        assert!(q.is_empty());
        q.push(5.0, "x");
        q.push(5.0, "y");
        assert_eq!(q.pop(), Some((5.0, "x")), "seq restarted");
        assert_eq!(q.pop(), Some((5.0, "y")));
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite event time"))]
    fn queue_rejects_non_finite_times() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, "nan");
        // Release builds clamp instead of scrambling the ordering: the
        // NaN-timed event saturates to the far future and pops last.
        q.push(1.0, "now");
        q.push(f64::INFINITY, "inf");
        q.push(f64::NEG_INFINITY, "ninf");
        assert_eq!(q.pop().unwrap().1, "ninf");
        assert_eq!(q.pop().unwrap().1, "now");
        let last_two: Vec<&str> = [q.pop().unwrap(), q.pop().unwrap()]
            .iter()
            .map(|(_, p)| *p)
            .collect();
        assert_eq!(last_two, vec!["nan", "inf"], "clamped ties keep seq order");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn time_derivations() {
        assert_eq!(hour_of_day(0.0), 0);
        assert_eq!(hour_of_day(3600.0 * 5.5), 5);
        assert_eq!(hour_of_day(DAY + 3600.0 * 23.0), 23);
        assert_eq!(day_of_sim(DAY * 3.0 + 100.0), 3);
        assert_eq!(hours_since_epoch(DAY + HOUR * 2.0), 26);
    }
}
