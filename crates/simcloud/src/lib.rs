//! A deterministic, discrete-event simulated multi-region serverless cloud.
//!
//! This crate is the stand-in for the AWS substrate the paper runs on. It
//! models exactly the services Caribou touches, with the same interfaces
//! and cost structure:
//!
//! * [`clock`] — virtual time and a generic discrete-event queue;
//! * [`latency`] — a CloudPing-calibrated inter-region latency and
//!   bandwidth model;
//! * [`pricing`] — an AWS-price-list-calibrated catalog (Lambda GB-s,
//!   per-request fees, SNS, DynamoDB, tiered inter-region egress);
//! * [`compute`] — Lambda-like function execution (memory→vCPU allocation,
//!   region performance factors, cold starts, `cpu_total_time` accounting
//!   for the utilization-based power model);
//! * [`pubsub`] — SNS-like topics with publish latency, at-least-once
//!   delivery, and ack-based retries;
//! * [`kv`] — a DynamoDB-like distributed key-value store with atomic
//!   read-modify-write, as required by the synchronization-node protocol;
//! * [`blob`] — S3-like regional object storage for intermediate payloads
//!   above the KV item limit;
//! * [`warm`] — a stateful warm-container pool making cold starts a
//!   function of traffic (fresh offload regions start cold);
//! * [`registry`] — an ECR-like container registry with crane-style
//!   cross-region image copies;
//! * [`iam`] — per-region role management;
//! * [`faults`] — composable fault injection (region outages, pairwise
//!   network partitions, gray failures, KV throttling, cold-start storms,
//!   deployment failures, message drops), deterministic under a seed;
//! * [`meter`] — usage metering and billing;
//! * [`providers`] — trait-based provider backends (`aws`, `gcp`-like)
//!   with per-provider messaging, KV, registry/compute, and pricing
//!   semantics;
//! * [`orchestration`] — transition-overhead models for Step-Functions-,
//!   SNS-, and Caribou-style orchestration (§9.6);
//! * [`cloud`] — the [`cloud::SimCloud`] façade bundling everything.
//!
//! All randomness flows through explicitly seeded [`caribou_model::Pcg32`]
//! generators, making every simulation bit-reproducible.

pub mod blob;
pub mod clock;
pub mod cloud;
pub mod compute;
pub mod faults;
pub mod iam;
pub mod kv;
pub mod latency;
pub mod meter;
pub mod orchestration;
pub mod pricing;
pub mod providers;
pub mod pubsub;
pub mod registry;
pub mod tinymap;
pub mod warm;

pub use cloud::SimCloud;
pub use compute::{ExecutionRecord, LambdaRuntime};
pub use latency::{InterProviderLatency, LatencyModel};
pub use meter::UsageMeter;
pub use pricing::PricingCatalog;
pub use providers::{backend_for, ProviderBackend};
