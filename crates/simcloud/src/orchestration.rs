//! Orchestration-overhead models (§9.6).
//!
//! The paper compares three ways to chain serverless functions: AWS Step
//! Functions (first-party, proprietary fast transitions), raw SNS
//! messaging (the channel Caribou builds on), and Caribou's wrapper (SNS
//! plus deployment-plan bookkeeping). Each variant charges a per-transition
//! overhead on top of message delivery, plus a per-invocation setup
//! overhead; Caribou's extra work is the DP fetch at workflow entry and
//! the location/plan piggybacking at each hop.

use caribou_model::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Log-space sigma of the orchestration overhead distributions (both
/// transition and setup); shared with the estimator's prepared fast path.
pub const OVERHEAD_SIGMA: f64 = 0.25;

/// The orchestration mechanism chaining workflow stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Orchestrator {
    /// AWS Step Functions: fastest transitions, single-region only.
    StepFunctions,
    /// Raw SNS chaining: the baseline channel, no synchronization support
    /// by itself.
    Sns,
    /// Caribou's wrapper over SNS: cross-region routing, synchronization,
    /// and plan piggybacking.
    Caribou,
}

impl Orchestrator {
    /// Median per-transition service overhead in seconds, excluding
    /// payload transfer (which the pub/sub and latency models charge).
    ///
    /// Calibrated so the relative gaps of Fig. 12 reproduce: Step Functions
    /// beats SNS by ~12.8% on small inputs, and Caribou adds <1% (geomean)
    /// over SNS.
    pub fn transition_overhead_median_s(self) -> f64 {
        match self {
            Orchestrator::StepFunctions => 0.010,
            Orchestrator::Sns => 0.045,
            Orchestrator::Caribou => 0.047,
        }
    }

    /// Per-invocation setup overhead in seconds: Caribou's entry wrapper
    /// fetches the active deployment plan from the KV store once.
    pub fn invocation_setup_median_s(self) -> f64 {
        match self {
            Orchestrator::StepFunctions => 0.0,
            Orchestrator::Sns => 0.0,
            Orchestrator::Caribou => 0.008,
        }
    }

    /// Samples one transition overhead.
    pub fn sample_transition_s(self, rng: &mut Pcg32) -> f64 {
        let median = self.transition_overhead_median_s();
        rng.lognormal(median.ln(), OVERHEAD_SIGMA)
    }

    /// Samples the invocation setup overhead.
    pub fn sample_setup_s(self, rng: &mut Pcg32) -> f64 {
        let median = self.invocation_setup_median_s();
        if median == 0.0 {
            0.0
        } else {
            rng.lognormal(median.ln(), OVERHEAD_SIGMA)
        }
    }

    /// Whether this orchestrator supports routing stages across regions.
    pub fn supports_cross_region(self) -> bool {
        matches!(self, Orchestrator::Caribou)
    }

    /// Whether this orchestrator supports synchronization nodes natively.
    pub fn supports_sync_nodes(self) -> bool {
        matches!(self, Orchestrator::StepFunctions | Orchestrator::Caribou)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_functions_fastest() {
        let sf = Orchestrator::StepFunctions.transition_overhead_median_s();
        let sns = Orchestrator::Sns.transition_overhead_median_s();
        let cb = Orchestrator::Caribou.transition_overhead_median_s();
        assert!(sf < sns);
        assert!(sns < cb);
        // Caribou stays within a few percent of SNS per transition.
        assert!((cb - sns) / sns < 0.10);
    }

    #[test]
    fn setup_overhead_only_for_caribou() {
        let mut rng = Pcg32::seed(1);
        assert_eq!(Orchestrator::Sns.sample_setup_s(&mut rng), 0.0);
        assert_eq!(Orchestrator::StepFunctions.sample_setup_s(&mut rng), 0.0);
        assert!(Orchestrator::Caribou.sample_setup_s(&mut rng) > 0.0);
    }

    #[test]
    fn sampled_transition_near_median() {
        let mut rng = Pcg32::seed(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| Orchestrator::Sns.sample_transition_s(&mut rng))
            .sum::<f64>()
            / n as f64;
        let median = Orchestrator::Sns.transition_overhead_median_s();
        assert!((mean / median - 1.0).abs() < 0.10, "mean {mean}");
    }

    #[test]
    fn capability_matrix() {
        assert!(Orchestrator::Caribou.supports_cross_region());
        assert!(!Orchestrator::Sns.supports_cross_region());
        assert!(!Orchestrator::Sns.supports_sync_nodes());
        assert!(Orchestrator::StepFunctions.supports_sync_nodes());
    }
}
