//! ECR-like container registry with crane-style cross-region image copy.
//!
//! The Deployment Utility packages source code into Docker images and
//! pushes them to the registry of each deployment region (§6.1). For
//! re-deployments, the Migrator uses a crane-style copy from the home
//! region's registry to the new region instead of rebuilding — the model
//! charges the transfer time and egress bytes of that copy.

use std::collections::{HashMap, HashSet};

use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::latency::LatencyModel;

/// Service-side overhead of a push or copy, seconds.
const REGISTRY_OVERHEAD_S: f64 = 1.5;

/// Outcome of a registry transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryTransfer {
    /// Duration of the operation in seconds.
    pub duration_s: f64,
    /// Egress bytes charged to the source region (zero for initial pushes,
    /// which originate from the developer's machine).
    pub egress_bytes: f64,
}

/// One container image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageInfo {
    /// Image size in bytes.
    pub size_bytes: f64,
}

/// The container registry service.
#[derive(Debug, Default)]
pub struct ContainerRegistry {
    images: HashMap<String, ImageInfo>,
    /// `(image, region)` presence set.
    replicas: HashSet<(String, RegionId)>,
    /// Per-region service overhead overrides (providers differ).
    overhead_override: HashMap<RegionId, f64>,
}

impl ContainerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the service-side overhead of pushes/copies into a region.
    pub fn set_overhead(&mut self, region: RegionId, overhead_s: f64) {
        self.overhead_override.insert(region, overhead_s);
    }

    /// The service overhead charged for transfers into a region.
    pub fn overhead_for(&self, region: RegionId) -> f64 {
        self.overhead_override
            .get(&region)
            .copied()
            .unwrap_or(REGISTRY_OVERHEAD_S)
    }

    /// Pushes a freshly built image into `region` (initial deployment,
    /// §6.1 step 2). Upload bandwidth is the region's ingress path from
    /// the developer; ingress is free, so no egress bytes are charged.
    pub fn push(
        &mut self,
        image: impl Into<String>,
        size_bytes: f64,
        region: RegionId,
    ) -> RegistryTransfer {
        let image = image.into();
        self.images.insert(image.clone(), ImageInfo { size_bytes });
        self.replicas.insert((image, region));
        // Developer uplink of ~50 MB/s.
        RegistryTransfer {
            duration_s: self.overhead_for(region) + size_bytes / 50.0e6,
            egress_bytes: 0.0,
        }
    }

    /// Copies an image between regional registries using crane (§6.1
    /// Re-Deployment), charging inter-region transfer time and egress.
    ///
    /// Returns `None` when the image is not present in `from`.
    pub fn crane_copy(
        &mut self,
        image: &str,
        from: RegionId,
        to: RegionId,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> Option<RegistryTransfer> {
        if !self.replicas.contains(&(image.to_string(), from)) {
            return None;
        }
        let info = self.images.get(image)?.clone();
        if self.replicas.contains(&(image.to_string(), to)) {
            // Already replicated; crane's manifest check is cheap.
            return Some(RegistryTransfer {
                duration_s: 0.5,
                egress_bytes: 0.0,
            });
        }
        let transfer = latency.sample_transfer_seconds(from, to, info.size_bytes, rng);
        self.replicas.insert((image.to_string(), to));
        Some(RegistryTransfer {
            duration_s: self.overhead_for(to) + transfer,
            egress_bytes: info.size_bytes,
        })
    }

    /// Whether an image replica exists in a region.
    pub fn has_replica(&self, image: &str, region: RegionId) -> bool {
        self.replicas.contains(&(image.to_string(), region))
    }

    /// Size of an image, if known.
    pub fn image_size(&self, image: &str) -> Option<f64> {
        self.images.get(image).map(|i| i.size_bytes)
    }

    /// Removes a replica (used when tearing down an abandoned deployment).
    pub fn remove_replica(&mut self, image: &str, region: RegionId) -> bool {
        self.replicas.remove(&(image.to_string(), region))
    }

    /// Number of `(image, region)` replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, LatencyModel, ContainerRegistry, Pcg32) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        (cat, lm, ContainerRegistry::new(), Pcg32::seed(1))
    }

    #[test]
    fn push_registers_replica() {
        let (cat, _lm, mut reg, _rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let t = reg.push("wf:1", 250e6, r);
        assert!(t.duration_s > REGISTRY_OVERHEAD_S);
        assert_eq!(t.egress_bytes, 0.0);
        assert!(reg.has_replica("wf:1", r));
        assert_eq!(reg.image_size("wf:1"), Some(250e6));
    }

    #[test]
    fn crane_copy_charges_egress() {
        let (cat, lm, mut reg, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        reg.push("wf:1", 250e6, east);
        let t = reg.crane_copy("wf:1", east, west, &lm, &mut rng).unwrap();
        assert_eq!(t.egress_bytes, 250e6);
        assert!(t.duration_s > 1.0);
        assert!(reg.has_replica("wf:1", west));
    }

    #[test]
    fn crane_copy_missing_source_fails() {
        let (cat, lm, mut reg, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        assert!(reg.crane_copy("wf:1", east, west, &lm, &mut rng).is_none());
    }

    #[test]
    fn crane_copy_idempotent_when_replica_exists() {
        let (cat, lm, mut reg, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        reg.push("wf:1", 250e6, east);
        reg.crane_copy("wf:1", east, west, &lm, &mut rng).unwrap();
        let again = reg.crane_copy("wf:1", east, west, &lm, &mut rng).unwrap();
        assert_eq!(again.egress_bytes, 0.0);
        assert!(again.duration_s < 1.0);
    }

    #[test]
    fn remove_replica_forgets_region_only() {
        let (cat, lm, mut reg, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        reg.push("wf:1", 100e6, east);
        reg.crane_copy("wf:1", east, west, &lm, &mut rng).unwrap();
        assert!(reg.remove_replica("wf:1", west));
        assert!(!reg.has_replica("wf:1", west));
        assert!(reg.has_replica("wf:1", east));
    }
}
