//! SNS-like publish/subscribe messaging.
//!
//! Caribou uses pub/sub as its "geospatial offloading glue" (§6.2): every
//! function deployment subscribes to one topic in its region, and a
//! predecessor invokes a successor by publishing to that topic. The model
//! captures publish overhead, cross-region transfer of the message payload,
//! and the at-least-once delivery with subscriber acknowledgment and
//! automatic retry the paper relies on for reliability.

use std::collections::HashMap;

use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::latency::LatencyModel;

/// Median service-side publish overhead, seconds (SNS publish + fan-out to
/// the Lambda trigger).
const PUBLISH_OVERHEAD_MEDIAN_S: f64 = 0.030;
/// Log-space sigma of the publish overhead.
const PUBLISH_OVERHEAD_SIGMA: f64 = 0.35;
/// Delay before an unacknowledged delivery is retried, seconds.
const RETRY_BACKOFF_S: f64 = 0.5;
/// Maximum delivery attempts before the message is dead-lettered.
pub const MAX_ATTEMPTS: u32 = 5;

/// A pub/sub topic identifier: one topic per (workflow, stage, region), as
/// in §6.1 step 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopicKey {
    /// Workflow name.
    pub workflow: String,
    /// Stage (node) name.
    pub stage: String,
    /// Region the subscribed function deployment lives in.
    pub region: RegionId,
}

/// Outcome of delivering one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// End-to-end latency from publish to (acknowledged) delivery, seconds.
    pub latency_s: f64,
    /// Number of delivery attempts (1 = no retries needed).
    pub attempts: u32,
    /// Whether delivery ultimately succeeded within [`MAX_ATTEMPTS`].
    pub delivered: bool,
}

/// The pub/sub service.
#[derive(Debug, Default)]
pub struct PubSub {
    topics: HashMap<TopicKey, ()>,
    /// Published message counts per publishing region, for billing.
    publishes: HashMap<RegionId, u64>,
    /// Probability any single delivery attempt is lost (fault injection).
    pub drop_probability: f64,
}

impl PubSub {
    /// Creates the service with no topics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a topic; idempotent.
    pub fn create_topic(&mut self, key: TopicKey) {
        self.topics.insert(key, ());
    }

    /// Deletes a topic, returning whether it existed.
    pub fn delete_topic(&mut self, key: &TopicKey) -> bool {
        self.topics.remove(key).is_some()
    }

    /// Whether a topic exists.
    pub fn topic_exists(&self, key: &TopicKey) -> bool {
        self.topics.contains_key(key)
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Publishes a message of `payload_bytes` from `from` to the topic,
    /// simulating delivery to the topic's regional subscriber.
    ///
    /// Returns the delivery outcome; latency includes publish overhead,
    /// cross-region payload transfer, and any retry backoffs.
    pub fn publish(
        &mut self,
        key: &TopicKey,
        from: RegionId,
        payload_bytes: f64,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> Delivery {
        assert!(
            self.topic_exists(key),
            "publish to missing topic {}/{}/{}",
            key.workflow,
            key.stage,
            key.region
        );
        *self.publishes.entry(from).or_insert(0) += 1;
        let telemetry = caribou_telemetry::is_enabled();
        if telemetry {
            caribou_telemetry::event("pubsub.publish", &key.stage, payload_bytes);
        }
        let mut total = rng.lognormal(PUBLISH_OVERHEAD_MEDIAN_S.ln(), PUBLISH_OVERHEAD_SIGMA);
        let mut attempts = 0;
        while attempts < MAX_ATTEMPTS {
            attempts += 1;
            total += latency.sample_transfer_seconds(from, key.region, payload_bytes, rng);
            if !rng.chance(self.drop_probability) {
                if telemetry {
                    caribou_telemetry::count("pubsub.ack", 1);
                    if attempts > 1 {
                        caribou_telemetry::event("pubsub.retry", &key.stage, (attempts - 1) as f64);
                    }
                    caribou_telemetry::observe("pubsub.delivery_latency_s", total);
                }
                return Delivery {
                    latency_s: total,
                    attempts,
                    delivered: true,
                };
            }
            total += RETRY_BACKOFF_S;
        }
        if telemetry {
            caribou_telemetry::event("pubsub.dead_letter", &key.stage, attempts as f64);
        }
        Delivery {
            latency_s: total,
            attempts,
            delivered: false,
        }
    }

    /// Messages published from a region so far.
    pub fn published_from(&self, region: RegionId) -> u64 {
        self.publishes.get(&region).copied().unwrap_or(0)
    }

    /// Total messages published.
    pub fn total_published(&self) -> u64 {
        self.publishes.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, LatencyModel, PubSub, Pcg32) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        (cat, lm, PubSub::new(), Pcg32::seed(1))
    }

    fn key(region: RegionId) -> TopicKey {
        TopicKey {
            workflow: "wf".into(),
            stage: "a".into(),
            region,
        }
    }

    #[test]
    fn publish_delivers_with_latency() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        let d = ps.publish(&key(r), r, 1024.0, &lm, &mut rng);
        assert!(d.delivered);
        assert_eq!(d.attempts, 1);
        assert!(d.latency_s > 0.0);
    }

    #[test]
    fn cross_region_publish_slower() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        ps.create_topic(key(east));
        ps.create_topic(key(west));
        let n = 300;
        let mut local = 0.0;
        let mut remote = 0.0;
        for _ in 0..n {
            local += ps
                .publish(&key(east), east, 1024.0, &lm, &mut rng)
                .latency_s;
            remote += ps
                .publish(&key(west), east, 1024.0, &lm, &mut rng)
                .latency_s;
        }
        assert!(remote > local, "local {local} remote {remote}");
    }

    #[test]
    fn drops_trigger_retries() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        ps.drop_probability = 0.5;
        let mut retried = 0;
        for _ in 0..200 {
            let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
            if d.attempts > 1 && d.delivered {
                retried += 1;
            }
        }
        assert!(retried > 30, "retried {retried}");
    }

    #[test]
    fn total_drop_dead_letters() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        ps.drop_probability = 1.0;
        let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
        assert!(!d.delivered);
        assert_eq!(d.attempts, 5);
    }

    #[test]
    #[should_panic]
    fn publish_to_missing_topic_panics() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.publish(&key(r), r, 128.0, &lm, &mut rng);
    }

    #[test]
    fn publish_counts_per_region() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        ps.create_topic(key(east));
        ps.publish(&key(east), east, 1.0, &lm, &mut rng);
        ps.publish(&key(east), west, 1.0, &lm, &mut rng);
        ps.publish(&key(east), west, 1.0, &lm, &mut rng);
        assert_eq!(ps.published_from(east), 1);
        assert_eq!(ps.published_from(west), 2);
        assert_eq!(ps.total_published(), 3);
    }

    #[test]
    fn topic_lifecycle() {
        let (cat, _lm, mut ps, _rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        assert!(!ps.topic_exists(&key(r)));
        ps.create_topic(key(r));
        assert!(ps.topic_exists(&key(r)));
        assert_eq!(ps.topic_count(), 1);
        assert!(ps.delete_topic(&key(r)));
        assert!(!ps.delete_topic(&key(r)));
    }
}
