//! SNS-like publish/subscribe messaging.
//!
//! Caribou uses pub/sub as its "geospatial offloading glue" (§6.2): every
//! function deployment subscribes to one topic in its region, and a
//! predecessor invokes a successor by publishing to that topic. The model
//! captures publish overhead, cross-region transfer of the message payload,
//! and the at-least-once delivery with subscriber acknowledgment and
//! automatic retry the paper relies on for reliability. Retries back off
//! with exponential growth and decorrelated jitter (AWS guidance) rather
//! than a constant delay, and each attempt consults the active
//! [`FaultPlan`]: a down target region or an active pairwise partition
//! loses the attempt, and gray failures inflate the transfer latency.

use std::collections::HashMap;

use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::faults::FaultPlan;
use crate::latency::LatencyModel;
use crate::providers::{DeliveryKind, MessagingProfile};

/// Median service-side publish overhead, seconds (SNS publish + fan-out to
/// the Lambda trigger).
pub const PUBLISH_OVERHEAD_MEDIAN_S: f64 = 0.030;
/// Log-space sigma of the publish overhead.
pub const PUBLISH_OVERHEAD_SIGMA: f64 = 0.35;
/// Minimum delay before an unacknowledged delivery is retried, seconds.
pub const RETRY_BACKOFF_BASE_S: f64 = 0.5;
/// Cap on any single retry backoff, seconds.
pub const RETRY_BACKOFF_CAP_S: f64 = 8.0;
/// Maximum delivery attempts before the message is dead-lettered.
pub const MAX_ATTEMPTS: u32 = 5;

/// A pub/sub topic identifier: one topic per (workflow, stage, region), as
/// in §6.1 step 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TopicKey {
    /// Workflow name.
    pub workflow: String,
    /// Stage (node) name.
    pub stage: String,
    /// Region the subscribed function deployment lives in.
    pub region: RegionId,
}

/// How a publish attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// Acknowledged by the subscriber within [`MAX_ATTEMPTS`].
    Delivered,
    /// All attempts lost; the message landed in the dead-letter queue.
    DeadLettered,
    /// The topic does not exist; the publish call itself was rejected.
    TopicMissing,
}

/// Outcome of delivering one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// End-to-end latency from publish to (acknowledged) delivery, seconds.
    pub latency_s: f64,
    /// Number of delivery attempts (1 = no retries needed).
    pub attempts: u32,
    /// How the publish ended.
    pub status: DeliveryStatus,
}

impl Delivery {
    /// Whether delivery ultimately succeeded.
    pub fn delivered(&self) -> bool {
        self.status == DeliveryStatus::Delivered
    }
}

/// The pub/sub service.
#[derive(Debug, Default)]
pub struct PubSub {
    topics: HashMap<TopicKey, ()>,
    /// Published message counts per publishing region, for billing.
    publishes: HashMap<RegionId, u64>,
    /// Probability any single delivery attempt is lost (fault injection).
    pub drop_probability: f64,
    /// Windowed faults consulted on every attempt (outages, partitions,
    /// gray failures) at the current fault clock [`PubSub::now_s`].
    pub faults: FaultPlan,
    /// Simulation time used to evaluate windowed faults. The engine
    /// positions this at the start of each invocation via
    /// `SimCloud::set_fault_now`.
    pub now_s: f64,
    /// Per-region messaging profiles (indexed by the subscriber region).
    /// Empty in legacy clouds: every region then behaves like
    /// [`MessagingProfile::aws_sns`], reproducing the historical SNS
    /// constants and RNG draw order exactly.
    profiles: Vec<MessagingProfile>,
}

impl PubSub {
    /// Creates the service with no topics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs per-region messaging profiles (one entry per catalog
    /// region, indexed by the subscriber region).
    pub fn set_profiles(&mut self, profiles: Vec<MessagingProfile>) {
        self.profiles = profiles;
    }

    /// The messaging profile governing delivery to a subscriber region.
    pub fn profile_for(&self, region: RegionId) -> MessagingProfile {
        self.profiles
            .get(region.index())
            .copied()
            .unwrap_or_else(MessagingProfile::aws_sns)
    }

    /// Creates a topic; idempotent.
    pub fn create_topic(&mut self, key: TopicKey) {
        self.topics.insert(key, ());
    }

    /// Deletes a topic, returning whether it existed.
    pub fn delete_topic(&mut self, key: &TopicKey) -> bool {
        self.topics.remove(key).is_some()
    }

    /// Whether a topic exists.
    pub fn topic_exists(&self, key: &TopicKey) -> bool {
        self.topics.contains_key(key)
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Publishes a message of `payload_bytes` from `from` to the topic,
    /// simulating delivery to the topic's regional subscriber.
    ///
    /// Returns the delivery outcome; latency includes publish overhead,
    /// cross-region payload transfer, and any retry backoffs. Publishing
    /// to a topic that does not exist returns a
    /// [`DeliveryStatus::TopicMissing`] outcome (the API call is rejected;
    /// nothing is billed) instead of aborting the process.
    pub fn publish(
        &mut self,
        key: &TopicKey,
        from: RegionId,
        payload_bytes: f64,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> Delivery {
        let telemetry = caribou_telemetry::is_enabled();
        if !self.topic_exists(key) {
            if telemetry {
                caribou_telemetry::event("pubsub.topic_missing", &key.stage, key.region.0 as f64);
            }
            return Delivery {
                latency_s: 0.0,
                attempts: 0,
                status: DeliveryStatus::TopicMissing,
            };
        }
        *self.publishes.entry(from).or_insert(0) += 1;
        if telemetry {
            caribou_telemetry::event("pubsub.publish", &key.stage, payload_bytes);
        }
        let profile = self.profile_for(key.region);
        let gray = self
            .faults
            .pair_latency_factor(from, key.region, self.now_s);
        let mut total = rng.lognormal(
            profile.publish_overhead_median_s.ln(),
            profile.publish_overhead_sigma,
        );
        if let DeliveryKind::PushOrdered {
            ordering_delay_s, ..
        } = profile.delivery
        {
            // Ordered push delivery serializes within the subscription.
            total += ordering_delay_s;
        }
        let mut attempts = 0;
        let mut backoff = match profile.delivery {
            DeliveryKind::PullFanOut { backoff_base_s, .. } => backoff_base_s,
            DeliveryKind::PushOrdered { .. } => 0.0,
        };
        while attempts < profile.max_attempts {
            attempts += 1;
            total += latency.sample_transfer_seconds(from, key.region, payload_bytes, rng) * gray;
            let target_down = self.faults.region_down(key.region, self.now_s);
            let partitioned = self.faults.partitioned(from, key.region, self.now_s);
            let lost = target_down || partitioned || rng.chance(self.drop_probability);
            if !lost {
                if telemetry {
                    caribou_telemetry::count("pubsub.ack", 1);
                    if attempts > 1 {
                        caribou_telemetry::event("pubsub.retry", &key.stage, (attempts - 1) as f64);
                    }
                    caribou_telemetry::observe("pubsub.delivery_latency_s", total);
                }
                return Delivery {
                    latency_s: total,
                    attempts,
                    status: DeliveryStatus::Delivered,
                };
            }
            if telemetry {
                if target_down {
                    caribou_telemetry::count("fault.region_down_drop", 1);
                } else if partitioned {
                    caribou_telemetry::count("fault.partition_drop", 1);
                }
            }
            if attempts < profile.max_attempts {
                match profile.delivery {
                    DeliveryKind::PullFanOut {
                        backoff_base_s,
                        backoff_cap_s,
                    } => {
                        // Decorrelated jitter (AWS architecture blog): grow
                        // from the previous delay, never below the base,
                        // never above the cap.
                        backoff = rng
                            .uniform(backoff_base_s, backoff * 3.0)
                            .min(backoff_cap_s);
                        total += backoff;
                    }
                    DeliveryKind::PushOrdered { ack_deadline_s, .. } => {
                        // Push redelivery waits out the fixed ack deadline;
                        // no jitter draw.
                        total += ack_deadline_s;
                    }
                }
            }
        }
        if telemetry {
            caribou_telemetry::event("pubsub.dead_letter", &key.stage, attempts as f64);
        }
        Delivery {
            latency_s: total,
            attempts,
            status: DeliveryStatus::DeadLettered,
        }
    }

    /// Messages published from a region so far.
    pub fn published_from(&self, region: RegionId) -> u64 {
        self.publishes.get(&region).copied().unwrap_or(0)
    }

    /// Total messages published.
    pub fn total_published(&self) -> u64 {
        self.publishes.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, LatencyModel, PubSub, Pcg32) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        (cat, lm, PubSub::new(), Pcg32::seed(1))
    }

    fn key(region: RegionId) -> TopicKey {
        TopicKey {
            workflow: "wf".into(),
            stage: "a".into(),
            region,
        }
    }

    #[test]
    fn publish_delivers_with_latency() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        let d = ps.publish(&key(r), r, 1024.0, &lm, &mut rng);
        assert!(d.delivered());
        assert_eq!(d.status, DeliveryStatus::Delivered);
        assert_eq!(d.attempts, 1);
        assert!(d.latency_s > 0.0);
    }

    #[test]
    fn cross_region_publish_slower() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        ps.create_topic(key(east));
        ps.create_topic(key(west));
        let n = 300;
        let mut local = 0.0;
        let mut remote = 0.0;
        for _ in 0..n {
            local += ps
                .publish(&key(east), east, 1024.0, &lm, &mut rng)
                .latency_s;
            remote += ps
                .publish(&key(west), east, 1024.0, &lm, &mut rng)
                .latency_s;
        }
        assert!(remote > local, "local {local} remote {remote}");
    }

    #[test]
    fn drops_trigger_retries() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        ps.drop_probability = 0.5;
        let mut retried = 0;
        for _ in 0..200 {
            let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
            if d.attempts > 1 && d.delivered() {
                retried += 1;
            }
        }
        assert!(retried > 30, "retried {retried}");
    }

    #[test]
    fn total_drop_dead_letters() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        ps.drop_probability = 1.0;
        let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
        assert!(!d.delivered());
        assert_eq!(d.status, DeliveryStatus::DeadLettered);
        assert_eq!(d.attempts, 5);
    }

    #[test]
    fn retry_backoff_has_jitter_and_respects_base() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.create_topic(key(r));
        ps.drop_probability = 1.0;
        let mut latencies = Vec::new();
        for _ in 0..50 {
            let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
            // Four backoffs of at least the base delay each.
            assert!(
                d.latency_s >= 4.0 * RETRY_BACKOFF_BASE_S,
                "latency {}",
                d.latency_s
            );
            // Four backoffs capped, plus generous overhead slack.
            assert!(d.latency_s < 4.0 * RETRY_BACKOFF_CAP_S + 2.0);
            latencies.push(d.latency_s);
        }
        // Jitter: dead-letter latencies must not all collapse to one value.
        let min = latencies.iter().cloned().fold(f64::MAX, f64::min);
        let max = latencies.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 1.0, "min {min} max {max}");
    }

    #[test]
    fn default_profile_is_bit_identical_to_legacy_constants() {
        // Two services, one with the AWS profile installed explicitly and
        // one without any profiles, must draw identical delivery outcomes
        // from identical RNG streams.
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        let mut legacy = PubSub::new();
        let mut profiled = PubSub::new();
        profiled.set_profiles(vec![MessagingProfile::aws_sns(); cat.len()]);
        for ps in [&mut legacy, &mut profiled] {
            ps.create_topic(key(west));
            ps.drop_probability = 0.3;
        }
        let mut rng_a = Pcg32::seed(77);
        let mut rng_b = Pcg32::seed(77);
        for _ in 0..200 {
            let a = legacy.publish(&key(west), east, 2048.0, &lm, &mut rng_a);
            let b = profiled.publish(&key(west), east, 2048.0, &lm, &mut rng_b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn push_ordered_profile_redelivers_on_ack_deadline() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        ps.set_profiles(vec![
            MessagingProfile {
                publish_overhead_median_s: 0.020,
                publish_overhead_sigma: 0.30,
                max_attempts: 5,
                delivery: DeliveryKind::PushOrdered {
                    ack_deadline_s: 1.0,
                    ordering_delay_s: 0.005,
                },
            };
            cat.len()
        ]);
        ps.create_topic(key(r));
        ps.drop_probability = 1.0;
        let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
        assert_eq!(d.status, DeliveryStatus::DeadLettered);
        assert_eq!(d.attempts, 5);
        // Four fixed ack-deadline waits dominate the latency; unlike the
        // jittered pull fan-out, repeated dead-letters cluster tightly.
        assert!(d.latency_s >= 4.0, "latency {}", d.latency_s);
        let mut latencies = Vec::new();
        for _ in 0..50 {
            latencies.push(ps.publish(&key(r), r, 128.0, &lm, &mut rng).latency_s);
        }
        let min = latencies.iter().cloned().fold(f64::MAX, f64::min);
        let max = latencies.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min < 1.0, "fixed deadlines: min {min} max {max}");
    }

    #[test]
    fn publish_to_missing_topic_returns_typed_status() {
        let (cat, lm, mut ps, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let d = ps.publish(&key(r), r, 128.0, &lm, &mut rng);
        assert_eq!(d.status, DeliveryStatus::TopicMissing);
        assert!(!d.delivered());
        assert_eq!(d.attempts, 0);
        // Rejected publishes are not billed.
        assert_eq!(ps.total_published(), 0);
    }

    #[test]
    fn outage_of_target_region_dead_letters() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let ca = cat.id_of("ca-central-1").unwrap();
        ps.create_topic(key(ca));
        ps.faults = FaultPlan::none().with_outage(ca, 100.0, 200.0);
        ps.now_s = 150.0;
        let d = ps.publish(&key(ca), east, 128.0, &lm, &mut rng);
        assert_eq!(d.status, DeliveryStatus::DeadLettered);
        assert_eq!(d.attempts, MAX_ATTEMPTS);
        ps.now_s = 250.0;
        let d = ps.publish(&key(ca), east, 128.0, &lm, &mut rng);
        assert!(d.delivered());
    }

    #[test]
    fn partition_loses_cross_pair_traffic_only() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        let ca = cat.id_of("ca-central-1").unwrap();
        ps.create_topic(key(west));
        ps.faults = FaultPlan::none().with_partition(east, west, 0.0, 1000.0);
        ps.now_s = 500.0;
        let d = ps.publish(&key(west), east, 128.0, &lm, &mut rng);
        assert_eq!(d.status, DeliveryStatus::DeadLettered);
        // The partitioned region still accepts traffic from other peers.
        let d = ps.publish(&key(west), ca, 128.0, &lm, &mut rng);
        assert!(d.delivered());
    }

    #[test]
    fn gray_failure_inflates_delivery_latency() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        ps.create_topic(key(west));
        let n = 200;
        let mut clean = 0.0;
        for _ in 0..n {
            clean += ps
                .publish(&key(west), east, 4096.0, &lm, &mut rng)
                .latency_s;
        }
        ps.faults = FaultPlan::none().with_gray_failure(west, 0.0, 1e9, 5.0);
        let mut gray = 0.0;
        for _ in 0..n {
            gray += ps
                .publish(&key(west), east, 4096.0, &lm, &mut rng)
                .latency_s;
        }
        assert!(gray > clean * 1.5, "clean {clean} gray {gray}");
    }

    #[test]
    fn publish_counts_per_region() {
        let (cat, lm, mut ps, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        ps.create_topic(key(east));
        ps.publish(&key(east), east, 1.0, &lm, &mut rng);
        ps.publish(&key(east), west, 1.0, &lm, &mut rng);
        ps.publish(&key(east), west, 1.0, &lm, &mut rng);
        assert_eq!(ps.published_from(east), 1);
        assert_eq!(ps.published_from(west), 2);
        assert_eq!(ps.total_published(), 3);
    }

    #[test]
    fn topic_lifecycle() {
        let (cat, _lm, mut ps, _rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        assert!(!ps.topic_exists(&key(r)));
        ps.create_topic(key(r));
        assert!(ps.topic_exists(&key(r)));
        assert_eq!(ps.topic_count(), 1);
        assert!(ps.delete_topic(&key(r)));
        assert!(!ps.delete_topic(&key(r)));
    }
}
