//! Per-region IAM role management (§6.1 step 2).
//!
//! The paper attaches one IAM role per function deployment region. The
//! simulated IAM tracks role existence and the attached policy so the
//! Deployment Utility and Migrator can be exercised end-to-end, including
//! the failure path where a role is missing.

use std::collections::HashMap;

use caribou_model::manifest::IamPolicy;
use caribou_model::region::RegionId;

/// Key of a role: one per (workflow, region).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RoleKey {
    /// Workflow name the role belongs to.
    pub workflow: String,
    /// Deployment region.
    pub region: RegionId,
}

/// The IAM service.
#[derive(Debug, Default)]
pub struct Iam {
    roles: HashMap<RoleKey, IamPolicy>,
}

impl Iam {
    /// Creates the service with no roles.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates or updates the role for a workflow in a region.
    pub fn put_role(&mut self, workflow: impl Into<String>, region: RegionId, policy: IamPolicy) {
        self.roles.insert(
            RoleKey {
                workflow: workflow.into(),
                region,
            },
            policy,
        );
    }

    /// Whether the role exists.
    pub fn role_exists(&self, workflow: &str, region: RegionId) -> bool {
        self.roles.contains_key(&RoleKey {
            workflow: workflow.to_string(),
            region,
        })
    }

    /// Returns the policy of a role.
    pub fn policy(&self, workflow: &str, region: RegionId) -> Option<&IamPolicy> {
        self.roles.get(&RoleKey {
            workflow: workflow.to_string(),
            region,
        })
    }

    /// Deletes the role, returning whether it existed.
    pub fn delete_role(&mut self, workflow: &str, region: RegionId) -> bool {
        self.roles
            .remove(&RoleKey {
                workflow: workflow.to_string(),
                region,
            })
            .is_some()
    }

    /// Checks that a role permits an action (prefix match on the action
    /// pattern, e.g. `sns:Publish` matches `sns:*`).
    pub fn allows(&self, workflow: &str, region: RegionId, action: &str) -> bool {
        self.policy(workflow, region)
            .map(|p| {
                p.statements.iter().any(|s| {
                    s.action == action
                        || s.action
                            .strip_suffix('*')
                            .is_some_and(|prefix| action.starts_with(prefix))
                })
            })
            .unwrap_or(false)
    }

    /// Number of roles.
    pub fn role_count(&self) -> usize {
        self.roles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_lifecycle() {
        let mut iam = Iam::new();
        let r = RegionId(0);
        assert!(!iam.role_exists("wf", r));
        iam.put_role("wf", r, IamPolicy::caribou_default());
        assert!(iam.role_exists("wf", r));
        assert_eq!(iam.role_count(), 1);
        assert!(iam.delete_role("wf", r));
        assert!(!iam.role_exists("wf", r));
    }

    #[test]
    fn allows_exact_action() {
        let mut iam = Iam::new();
        let r = RegionId(1);
        iam.put_role("wf", r, IamPolicy::caribou_default());
        assert!(iam.allows("wf", r, "sns:Publish"));
        assert!(!iam.allows("wf", r, "s3:PutObject"));
    }

    #[test]
    fn allows_wildcard_action() {
        use caribou_model::manifest::{IamPolicy, IamStatement};
        let mut iam = Iam::new();
        let r = RegionId(2);
        iam.put_role(
            "wf",
            r,
            IamPolicy {
                statements: vec![IamStatement {
                    action: "dynamodb:*".into(),
                    resource: "*".into(),
                }],
            },
        );
        assert!(iam.allows("wf", r, "dynamodb:GetItem"));
        assert!(!iam.allows("wf", r, "sns:Publish"));
    }

    #[test]
    fn missing_role_denies() {
        let iam = Iam::new();
        assert!(!iam.allows("wf", RegionId(0), "sns:Publish"));
    }
}
