//! Usage metering and billing.
//!
//! Accumulates billable usage — Lambda GB-seconds and requests, SNS
//! publishes, DynamoDB operations, inter-region egress — and prices it
//! with a [`PricingCatalog`]. Used both for per-invocation cost records
//! and for the framework's own overhead accounting (§5.2: the control
//! logic's overhead must stay below the savings).

use caribou_model::region::RegionId;
use serde::{Deserialize, Serialize};

use crate::pricing::PricingCatalog;
use crate::tinymap::TinyMap;

/// Inline capacity of the meter's per-region maps: one invocation rarely
/// touches more regions than this; beyond it the map spills to a heap
/// `BTreeMap` transparently.
const METER_INLINE: usize = 8;

/// Per-region counters: inline and allocation-free up to
/// [`METER_INLINE`] regions.
pub type RegionMap<V> = TinyMap<RegionId, V, METER_INLINE>;
/// Per-(from, to) route counters.
pub type RouteMap<V> = TinyMap<(RegionId, RegionId), V, METER_INLINE>;

/// Accumulated usage, decomposable by region.
///
/// Keyed by sorted [`TinyMap`]s so that iteration (summing costs,
/// serializing to JSON/CSV) is deterministic — byte-stable output for
/// identical runs — while a fresh per-invocation meter allocates nothing
/// for the handful of regions it touches.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UsageMeter {
    /// Lambda GB-seconds per region.
    pub lambda_gb_s: RegionMap<f64>,
    /// Lambda invocation counts per region.
    pub lambda_requests: RegionMap<u64>,
    /// SNS publishes per region.
    pub sns_publishes: RegionMap<u64>,
    /// DynamoDB reads per region.
    pub kv_reads: RegionMap<u64>,
    /// DynamoDB writes per region.
    pub kv_writes: RegionMap<u64>,
    /// Object-storage GETs per region.
    pub blob_gets: RegionMap<u64>,
    /// Object-storage PUTs per region.
    pub blob_puts: RegionMap<u64>,
    /// Egress bytes per (from, to) region pair, `from != to`.
    pub egress_bytes: RouteMap<f64>,
}

impl UsageMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one Lambda execution.
    pub fn record_lambda(&mut self, region: RegionId, duration_s: f64, memory_mb: u32) {
        let billed = (duration_s * 1000.0).ceil() / 1000.0;
        *self.lambda_gb_s.entry_or(region, 0.0) += billed * memory_mb as f64 / 1024.0;
        *self.lambda_requests.entry_or(region, 0) += 1;
    }

    /// Records one SNS publish originating in `region`.
    pub fn record_sns(&mut self, region: RegionId) {
        *self.sns_publishes.entry_or(region, 0) += 1;
    }

    /// Records DynamoDB operations billed in `region`.
    pub fn record_kv(&mut self, region: RegionId, reads: u64, writes: u64) {
        *self.kv_reads.entry_or(region, 0) += reads;
        *self.kv_writes.entry_or(region, 0) += writes;
    }

    /// Records object-storage requests billed in `region`.
    pub fn record_blob(&mut self, region: RegionId, gets: u64, puts: u64) {
        *self.blob_gets.entry_or(region, 0) += gets;
        *self.blob_puts.entry_or(region, 0) += puts;
    }

    /// Records data moved between regions (no-op when `from == to`).
    pub fn record_transfer(&mut self, from: RegionId, to: RegionId, bytes: f64) {
        if from != to && bytes > 0.0 {
            *self.egress_bytes.entry_or((from, to), 0.0) += bytes;
        }
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &UsageMeter) {
        for (r, v) in other.lambda_gb_s.iter() {
            *self.lambda_gb_s.entry_or(*r, 0.0) += v;
        }
        for (r, v) in other.lambda_requests.iter() {
            *self.lambda_requests.entry_or(*r, 0) += v;
        }
        for (r, v) in other.sns_publishes.iter() {
            *self.sns_publishes.entry_or(*r, 0) += v;
        }
        for (r, v) in other.kv_reads.iter() {
            *self.kv_reads.entry_or(*r, 0) += v;
        }
        for (r, v) in other.kv_writes.iter() {
            *self.kv_writes.entry_or(*r, 0) += v;
        }
        for (r, v) in other.blob_gets.iter() {
            *self.blob_gets.entry_or(*r, 0) += v;
        }
        for (r, v) in other.blob_puts.iter() {
            *self.blob_puts.entry_or(*r, 0) += v;
        }
        for (k, v) in other.egress_bytes.iter() {
            *self.egress_bytes.entry_or(*k, 0.0) += v;
        }
    }

    /// Total inter-region bytes moved.
    pub fn total_egress_bytes(&self) -> f64 {
        self.egress_bytes.values().sum()
    }

    /// Bytes moved between regions of *different providers* (its own
    /// cost/carbon line in cross-provider runs; always 0 on legacy
    /// single-provider catalogs).
    pub fn cross_provider_egress_bytes(&self, pricing: &PricingCatalog) -> f64 {
        self.egress_bytes
            .iter()
            .filter(|((from, to), _)| pricing.is_cross_provider(*from, *to))
            .map(|(_, bytes)| bytes)
            .sum()
    }

    /// Egress cost of the bytes that crossed a provider boundary, USD — a
    /// subset of [`UsageMeter::cost`]'s egress component.
    pub fn cross_provider_egress_cost(&self, pricing: &PricingCatalog) -> f64 {
        self.egress_bytes
            .iter()
            .filter(|((from, to), _)| pricing.is_cross_provider(*from, *to))
            .map(|((from, to), bytes)| pricing.egress_cost(*from, *to, *bytes))
            .sum()
    }

    /// Prices the accumulated usage in USD.
    pub fn cost(&self, pricing: &PricingCatalog) -> f64 {
        let mut total = 0.0;
        for (r, gbs) in self.lambda_gb_s.iter() {
            total += gbs * pricing.region(*r).lambda_gb_second;
        }
        for (r, n) in self.lambda_requests.iter() {
            total += *n as f64 * pricing.region(*r).lambda_per_request;
        }
        for (r, n) in self.sns_publishes.iter() {
            total += pricing.sns_cost(*r, *n);
        }
        for (r, n) in self.kv_reads.iter() {
            total += pricing.dynamodb_cost(*r, *n, 0);
        }
        for (r, n) in self.kv_writes.iter() {
            total += pricing.dynamodb_cost(*r, 0, *n);
        }
        for (r, n) in self.blob_gets.iter() {
            total += pricing.blob_cost(*r, *n, 0);
        }
        for (r, n) in self.blob_puts.iter() {
            total += pricing.blob_cost(*r, 0, *n);
        }
        for ((from, to), bytes) in self.egress_bytes.iter() {
            total += pricing.egress_cost(*from, *to, *bytes);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, PricingCatalog) {
        let cat = RegionCatalog::aws_default();
        let pc = PricingCatalog::aws_default(&cat);
        (cat, pc)
    }

    #[test]
    fn lambda_usage_priced() {
        let (cat, pc) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let mut m = UsageMeter::new();
        m.record_lambda(r, 1.0, 1024);
        let cost = m.cost(&pc);
        let expected = 0.0000166667 + 0.20 / 1e6;
        assert!((cost - expected).abs() < 1e-12, "cost {cost}");
    }

    #[test]
    fn egress_intra_region_ignored() {
        let (cat, pc) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let mut m = UsageMeter::new();
        m.record_transfer(r, r, 1e9);
        assert_eq!(m.total_egress_bytes(), 0.0);
        assert_eq!(m.cost(&pc), 0.0);
    }

    #[test]
    fn egress_inter_region_priced() {
        let (cat, pc) = setup();
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("ca-central-1").unwrap();
        let mut m = UsageMeter::new();
        m.record_transfer(a, b, 2e9);
        assert!((m.cost(&pc) - 0.04).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let (cat, pc) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let mut a = UsageMeter::new();
        a.record_lambda(r, 1.0, 1024);
        a.record_sns(r);
        let mut b = UsageMeter::new();
        b.record_lambda(r, 2.0, 1024);
        b.record_kv(r, 3, 4);
        a.merge(&b);
        assert!((a.lambda_gb_s[&r] - 3.0).abs() < 1e-12);
        assert_eq!(a.lambda_requests[&r], 2);
        assert_eq!(a.kv_reads[&r], 3);
        assert_eq!(a.kv_writes[&r], 4);
        assert!(a.cost(&pc) > 0.0);
    }

    #[test]
    fn billed_duration_rounds_up_to_ms() {
        let (cat, _pc) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let mut m = UsageMeter::new();
        m.record_lambda(r, 0.0001, 1024); // rounds to 1 ms
        assert!((m.lambda_gb_s[&r] - 0.001).abs() < 1e-12);
    }
}
