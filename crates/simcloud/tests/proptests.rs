//! Property-based tests for the simulated cloud substrate.

use caribou_model::region::RegionCatalog;
use caribou_model::rng::Pcg32;
use caribou_simcloud::clock::EventQueue;
use caribou_simcloud::kv::KvStore;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::meter::UsageMeter;
use caribou_simcloud::pricing::PricingCatalog;
use proptest::prelude::*;

proptest! {
    /// The event queue pops in non-decreasing time order with FIFO ties,
    /// for arbitrary insertion orders.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(*t, i);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties must be FIFO");
            }
        }
    }

    /// Latency model: transfers are non-negative, monotone in payload
    /// size, and intra-region is never slower than inter-region for the
    /// same bytes.
    #[test]
    fn latency_monotonicity(bytes in 0.0f64..1e9, seed in any::<u64>()) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("us-west-2").unwrap();
        let small = lm.expected_transfer_seconds(a, b, bytes);
        let bigger = lm.expected_transfer_seconds(a, b, bytes + 1e6);
        prop_assert!(small >= 0.0);
        prop_assert!(bigger > small);
        let local = lm.expected_transfer_seconds(a, a, bytes);
        prop_assert!(local <= small);
        let _ = seed;
    }

    /// The KV store behaves as a map: last write wins, atomic updates
    /// observe the latest value, op counters never decrease.
    #[test]
    fn kv_map_semantics(ops in proptest::collection::vec((0u8..3, 0u8..8, 0u32..1000), 1..100)) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        let mut kv = KvStore::new();
        let region = cat.id_of("us-east-1").unwrap();
        kv.create_table("t", region);
        let mut rng = Pcg32::seed(1);
        let mut shadow: std::collections::HashMap<String, Vec<u8>> = Default::default();
        let mut prev_ops = kv.total_ops();
        for (op, key, value) in ops {
            let key = format!("k{key}");
            match op {
                0 => {
                    let v = value.to_le_bytes().to_vec();
                    kv.put("t", &key, bytes::Bytes::from(v.clone()), region, &lm, &mut rng);
                    shadow.insert(key, v);
                }
                1 => {
                    let got = kv.get("t", &key, region, &lm, &mut rng);
                    prop_assert_eq!(
                        got.value.as_ref().map(|b| b.to_vec()),
                        shadow.get(&key).cloned()
                    );
                }
                _ => {
                    kv.atomic_update("t", &key, region, &lm, &mut rng, |prev| {
                        let mut v = prev.map(|b| b.to_vec()).unwrap_or_default();
                        v.push(7);
                        bytes::Bytes::from(v)
                    });
                    shadow.entry(key).or_default().push(7);
                }
            }
            let now = kv.total_ops();
            prop_assert!(now.reads >= prev_ops.reads && now.writes >= prev_ops.writes);
            prev_ops = now;
        }
    }

    /// Meter merging equals interleaved recording, and cost is additive.
    #[test]
    fn meter_merge_is_additive(
        lambdas in proptest::collection::vec((0.001f64..100.0, 128u32..4000), 0..20),
        transfers in proptest::collection::vec(0.0f64..1e9, 0..20),
    ) {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("ca-central-1").unwrap();
        let mut one = UsageMeter::new();
        let mut left = UsageMeter::new();
        let mut right = UsageMeter::new();
        for (i, (dur, mem)) in lambdas.iter().enumerate() {
            one.record_lambda(a, *dur, *mem);
            if i % 2 == 0 { left.record_lambda(a, *dur, *mem) } else { right.record_lambda(a, *dur, *mem) }
        }
        for (i, bytes) in transfers.iter().enumerate() {
            one.record_transfer(a, b, *bytes);
            if i % 2 == 0 { left.record_transfer(a, b, *bytes) } else { right.record_transfer(a, b, *bytes) }
        }
        left.merge(&right);
        let c1 = one.cost(&pricing);
        let c2 = left.cost(&pricing);
        prop_assert!((c1 - c2).abs() <= 1e-9 * c1.max(1.0), "{c1} vs {c2}");
    }

    /// Pricing: lambda cost is monotone in duration and memory, and the
    /// billed value never undercuts the exact product.
    #[test]
    fn lambda_pricing_monotone(d in 0.001f64..900.0, mem in 128u32..10_000) {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let r = cat.id_of("us-east-1").unwrap();
        let base = pricing.lambda_cost(r, d, mem);
        prop_assert!(pricing.lambda_cost(r, d * 2.0, mem) > base);
        prop_assert!(pricing.lambda_cost(r, d, mem * 2) > base);
        let exact = d * (mem as f64 / 1024.0) * pricing.region(r).lambda_gb_second
            + pricing.region(r).lambda_per_request;
        prop_assert!(base >= exact - 1e-15);
    }
}
