//! Holt-Winters triple exponential smoothing (§7.2).
//!
//! The Metrics Manager forecasts carbon intensity "using Holt-Winters
//! Forecasting Exponential Smoothing once every day using the hourly
//! carbon intensities of the previous week as input". This is the additive
//! formulation with a 24-hour season; smoothing parameters are selected by
//! a small grid search minimizing in-sample one-step-ahead error.

/// A fitted additive Holt-Winters model.
///
/// # Examples
///
/// ```
/// use caribou_carbon::forecast::HoltWinters;
///
/// // Two days of a clean daily pattern forecast the third day closely.
/// let data: Vec<f64> = (0..48)
///     .map(|h| 300.0 + 40.0 * (std::f64::consts::TAU * (h % 24) as f64 / 24.0).cos())
///     .collect();
/// let model = HoltWinters::fit(&data, 24);
/// let day3 = model.forecast(24);
/// assert!((day3[0] - data[0]).abs() < 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct HoltWinters {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// Season length (24 for hourly data with daily seasonality).
    pub season: usize,
    /// Level smoothing parameter.
    pub alpha: f64,
    /// Trend smoothing parameter.
    pub beta: f64,
    /// Seasonal smoothing parameter.
    pub gamma: f64,
    /// In-sample one-step-ahead mean absolute error.
    pub mae: f64,
    /// Next seasonal index to emit.
    phase: usize,
}

impl HoltWinters {
    /// Fits the model on `data` with the given season length, grid-searching
    /// the smoothing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `data` holds fewer than two full seasons or `season == 0`.
    pub fn fit(data: &[f64], season: usize) -> Self {
        assert!(season > 0, "season must be positive");
        assert!(
            data.len() >= 2 * season,
            "need at least two seasons of data ({} < {})",
            data.len(),
            2 * season
        );
        let grid = [0.05, 0.15, 0.3, 0.5];
        let gamma_grid = [0.05, 0.15, 0.3, 0.5];
        let beta_grid = [0.0, 0.01, 0.05];
        let mut best: Option<HoltWinters> = None;
        for &alpha in &grid {
            for &beta in &beta_grid {
                for &gamma in &gamma_grid {
                    let m = Self::fit_params(data, season, alpha, beta, gamma);
                    if best.as_ref().map(|b| m.mae < b.mae).unwrap_or(true) {
                        best = Some(m);
                    }
                }
            }
        }
        best.expect("non-empty grid")
    }

    /// Fits with explicit smoothing parameters.
    pub fn fit_params(data: &[f64], season: usize, alpha: f64, beta: f64, gamma: f64) -> Self {
        // Initialization: level = mean of the first season; trend from the
        // difference of the first two season means; seasonal indices from
        // deviations of the first season.
        let s0: f64 = data[..season].iter().sum::<f64>() / season as f64;
        let s1: f64 = data[season..2 * season].iter().sum::<f64>() / season as f64;
        let mut level = s0;
        let mut trend = (s1 - s0) / season as f64;
        let mut seasonal: Vec<f64> = data[..season].iter().map(|x| x - s0).collect();

        let mut abs_err = 0.0;
        let mut count = 0usize;
        for (t, &x) in data.iter().enumerate().skip(season) {
            let si = t % season;
            let predicted = level + trend + seasonal[si];
            abs_err += (x - predicted).abs();
            count += 1;
            let prev_level = level;
            level = alpha * (x - seasonal[si]) + (1.0 - alpha) * (level + trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * trend;
            seasonal[si] = gamma * (x - level) + (1.0 - gamma) * seasonal[si];
        }
        let phase = data.len() % season;
        HoltWinters {
            level,
            trend,
            seasonal,
            season,
            alpha,
            beta,
            gamma,
            mae: abs_err / count.max(1) as f64,
            phase,
        }
    }

    /// Forecasts the next `horizon` steps after the end of the fitted data.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon)
            .map(|h| {
                let si = (self.phase + h - 1) % self.season;
                (self.level + h as f64 * self.trend + self.seasonal[si]).max(0.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(days: usize) -> Vec<f64> {
        (0..days * 24)
            .map(|h| {
                let hod = (h % 24) as f64;
                300.0 + 50.0 * (std::f64::consts::TAU * (hod - 18.0) / 24.0).cos()
            })
            .collect()
    }

    #[test]
    fn recovers_pure_seasonal_pattern() {
        let data = seasonal_series(7);
        let hw = HoltWinters::fit(&data, 24);
        let f = hw.forecast(24);
        for (h, v) in f.iter().enumerate() {
            let expected = 300.0 + 50.0 * (std::f64::consts::TAU * (h as f64 - 18.0) / 24.0).cos();
            assert!(
                (v - expected).abs() < 10.0,
                "hour {h}: forecast {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn tracks_linear_trend() {
        let data: Vec<f64> = (0..7 * 24).map(|h| 100.0 + 0.5 * h as f64).collect();
        let hw = HoltWinters::fit(&data, 24);
        let f = hw.forecast(24);
        // At step h the truth is 100 + 0.5*(168 + h - 1 + 1).
        let truth_24 = 100.0 + 0.5 * (168.0 + 24.0);
        assert!(
            (f[23] - truth_24).abs() / truth_24 < 0.1,
            "forecast {} truth {truth_24}",
            f[23]
        );
    }

    #[test]
    fn forecast_never_negative() {
        let data: Vec<f64> = (0..48)
            .map(|h| if h % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let hw = HoltWinters::fit(&data, 24);
        assert!(hw.forecast(100).iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn error_grows_with_horizon_on_noisy_series() {
        use caribou_model::rng::Pcg32;
        let mut rng = Pcg32::seed(5);
        // Seasonal pattern plus a slow random walk: near-term forecasts
        // should beat far-term ones.
        let mut walk: f64 = 0.0;
        let data: Vec<f64> = (0..14 * 24)
            .map(|h| {
                walk += rng.normal(0.0, 3.0);
                let hod = (h % 24) as f64;
                400.0 + walk + 60.0 * (std::f64::consts::TAU * (hod - 19.0) / 24.0).cos()
            })
            .collect();
        let train = &data[..7 * 24];
        let test = &data[7 * 24..];
        let hw = HoltWinters::fit(train, 24);
        let f = hw.forecast(7 * 24);
        let err = |range: std::ops::Range<usize>| -> f64 {
            range.clone().map(|i| (f[i] - test[i]).abs()).sum::<f64>() / range.len() as f64
        };
        let near = err(0..24);
        let far = err(5 * 24..7 * 24);
        assert!(far > near, "near {near} far {far}");
    }

    #[test]
    #[should_panic]
    fn too_little_data_panics() {
        HoltWinters::fit(&[1.0; 30], 24);
    }

    #[test]
    fn explicit_params_respected() {
        let data = seasonal_series(7);
        let hw = HoltWinters::fit_params(&data, 24, 0.3, 0.01, 0.2);
        assert_eq!(hw.alpha, 0.3);
        assert_eq!(hw.beta, 0.01);
        assert_eq!(hw.gamma, 0.2);
        assert_eq!(hw.forecast(24).len(), 24);
    }
}
