//! The carbon data source abstraction consumed by the Metrics Manager.
//!
//! The paper's Metrics Manager gathers carbon intensity from Electricity
//! Maps periodically and forecasts it with Holt-Winters smoothing once a
//! day (§7.2). [`CarbonDataSource`] is the common interface; the solver is
//! always handed a [`ForecastingSource`] so that deployment plans are
//! based on *forecast* data while experiment evaluation uses the *actual*
//! underlying source — separating the two is what lets the harness measure
//! forecast-induced suboptimality (Fig. 11, Fig. 13b).

use std::collections::HashMap;

use caribou_model::region::{RegionCatalog, RegionId};

use crate::forecast::HoltWinters;
use crate::series::CarbonSeries;
use crate::synth::SyntheticCarbonSource;

/// Provides grid average carbon intensity (ACI, §7.1) per region and hour.
pub trait CarbonDataSource {
    /// Intensity in gCO₂eq/kWh of `region`'s grid at fractional `hour`
    /// since the epoch.
    fn intensity(&self, region: RegionId, hour: f64) -> f64;

    /// Average intensity over `[from_hour, to_hour)` sampled hourly.
    fn average(&self, region: RegionId, from_hour: f64, to_hour: f64) -> f64 {
        let n = ((to_hour - from_hour).max(1.0)) as usize;
        let sum: f64 = (0..n)
            .map(|i| self.intensity(region, from_hour + i as f64 + 0.5))
            .sum();
        sum / n as f64
    }
}

impl<S: CarbonDataSource + ?Sized> CarbonDataSource for &S {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        (**self).intensity(region, hour)
    }
}

/// Adapter exposing a [`SyntheticCarbonSource`] per region via the catalog's
/// grid-zone mapping. Regions on the same grid (us-east-1 and us-east-2 on
/// PJM) automatically see identical intensity, as in §2.1.
#[derive(Debug, Clone)]
pub struct RegionalSource {
    zones: Vec<String>,
    synth: SyntheticCarbonSource,
}

impl RegionalSource {
    /// Builds the adapter for a catalog.
    pub fn new(catalog: &RegionCatalog, synth: SyntheticCarbonSource) -> Self {
        RegionalSource {
            zones: catalog.iter().map(|(_, s)| s.grid_zone.clone()).collect(),
            synth,
        }
    }

    /// The grid zone backing a region.
    pub fn zone(&self, region: RegionId) -> &str {
        &self.zones[region.index()]
    }
}

impl CarbonDataSource for RegionalSource {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        self.synth.zone_intensity(&self.zones[region.index()], hour)
    }
}

/// A source backed by explicit per-region series (e.g. real Electricity
/// Maps CSV extracts). Out-of-range hours fall back to the series mean.
#[derive(Debug, Clone, Default)]
pub struct TableSource {
    series: HashMap<RegionId, CarbonSeries>,
}

impl TableSource {
    /// Creates an empty table source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the series for a region.
    pub fn insert(&mut self, region: RegionId, series: CarbonSeries) {
        self.series.insert(region, series);
    }

    /// The series for a region, if present.
    pub fn series(&self, region: RegionId) -> Option<&CarbonSeries> {
        self.series.get(&region)
    }

    /// Loads one `<region-name>.csv` file per region from a directory —
    /// the drop-in path for real Electricity Maps extracts. Files whose
    /// stem does not resolve against the catalog are reported as errors;
    /// regions without a file are simply absent from the source.
    pub fn from_csv_dir(dir: &std::path::Path, catalog: &RegionCatalog) -> Result<Self, String> {
        let mut out = TableSource::new();
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("csv") {
                continue;
            }
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("{}: unreadable file name", path.display()))?;
            let region = catalog
                .id_of(stem)
                .ok_or_else(|| format!("{}: unknown region `{stem}`", path.display()))?;
            let csv =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let series =
                CarbonSeries::from_csv(&csv).map_err(|e| format!("{}: {e}", path.display()))?;
            out.insert(region, series);
        }
        if out.series.is_empty() {
            return Err(format!("{}: no region CSV files found", dir.display()));
        }
        Ok(out)
    }

    /// Regions covered by this source.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> = self.series.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl CarbonDataSource for TableSource {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        let s = self
            .series
            .get(&region)
            .unwrap_or_else(|| panic!("no carbon series for region {region}"));
        s.at(hour).unwrap_or_else(|| s.mean())
    }
}

/// A forecasting wrapper: knows the real source's history up to
/// `trained_at_hour` and answers future queries with Holt-Winters
/// forecasts, exactly as the Metrics Manager hands data to the solver
/// (§7.2).
pub struct ForecastingSource<'a, S: CarbonDataSource> {
    actual: &'a S,
    regions: Vec<RegionId>,
    trained_at_hour: f64,
    forecasts: HashMap<RegionId, Vec<f64>>,
    history_hours: usize,
}

impl<'a, S: CarbonDataSource> ForecastingSource<'a, S> {
    /// Fits forecasts at `trained_at_hour` using the trailing week of
    /// hourly history, for up to `horizon_hours` of future queries.
    pub fn fit(
        actual: &'a S,
        regions: &[RegionId],
        trained_at_hour: f64,
        horizon_hours: usize,
    ) -> Self {
        let history_hours = 7 * 24;
        let mut forecasts = HashMap::new();
        for &r in regions {
            let from = trained_at_hour - history_hours as f64;
            let history: Vec<f64> = (0..history_hours)
                .map(|i| actual.intensity(r, from + i as f64 + 0.5))
                .collect();
            let hw = HoltWinters::fit(&history, 24);
            forecasts.insert(r, hw.forecast(horizon_hours));
        }
        ForecastingSource {
            actual,
            regions: regions.to_vec(),
            trained_at_hour,
            forecasts,
            history_hours,
        }
    }

    /// The hour the forecast was trained at.
    pub fn trained_at(&self) -> f64 {
        self.trained_at_hour
    }

    /// Regions covered by the forecast.
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }

    /// Length of the history window used for fitting, hours.
    pub fn history_hours(&self) -> usize {
        self.history_hours
    }
}

impl<S: CarbonDataSource> CarbonDataSource for ForecastingSource<'_, S> {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        if hour < self.trained_at_hour {
            // The past is known.
            return self.actual.intensity(region, hour);
        }
        let steps = (hour - self.trained_at_hour).floor() as usize;
        let f = self
            .forecasts
            .get(&region)
            .unwrap_or_else(|| panic!("region {region} not covered by forecast"));
        let idx = steps.min(f.len().saturating_sub(1));
        f.get(idx).copied().unwrap_or_else(|| {
            // Horizon exhausted with an empty forecast: fall back to the
            // actual source's long-run behaviour at the trained hour.
            self.actual.intensity(region, self.trained_at_hour)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn regional() -> (RegionCatalog, RegionalSource) {
        let cat = RegionCatalog::aws_default();
        let src = RegionalSource::new(&cat, SyntheticCarbonSource::aws_calibrated(3));
        (cat, src)
    }

    #[test]
    fn same_grid_regions_identical() {
        let (cat, src) = regional();
        let e1 = cat.id_of("us-east-1").unwrap();
        let e2 = cat.id_of("us-east-2").unwrap();
        for h in 0..48 {
            assert_eq!(src.intensity(e1, h as f64), src.intensity(e2, h as f64));
        }
    }

    #[test]
    fn average_matches_hourly_mean() {
        let (cat, src) = regional();
        let r = cat.id_of("ca-central-1").unwrap();
        let avg = src.average(r, 0.0, 24.0);
        let manual: f64 = (0..24)
            .map(|h| src.intensity(r, h as f64 + 0.5))
            .sum::<f64>()
            / 24.0;
        assert!((avg - manual).abs() < 1e-9);
    }

    #[test]
    fn table_source_round_trips() {
        let mut t = TableSource::new();
        t.insert(RegionId(0), CarbonSeries::new(0, vec![100.0, 200.0]));
        assert_eq!(t.intensity(RegionId(0), 0.5), 100.0);
        assert_eq!(t.intensity(RegionId(0), 1.5), 200.0);
        // Out-of-range falls back to the mean.
        assert_eq!(t.intensity(RegionId(0), 99.0), 150.0);
    }

    #[test]
    #[should_panic]
    fn table_source_missing_region_panics() {
        let t = TableSource::new();
        t.intensity(RegionId(5), 0.0);
    }

    #[test]
    fn csv_dir_round_trip() {
        let cat = RegionCatalog::aws_default();
        let dir = std::env::temp_dir().join(format!("caribou_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s1 = CarbonSeries::new(0, vec![380.0, 390.0, 370.0]);
        let s2 = CarbonSeries::new(0, vec![30.0, 32.0, 31.0]);
        std::fs::write(dir.join("us-east-1.csv"), s1.to_csv()).unwrap();
        std::fs::write(dir.join("ca-central-1.csv"), s2.to_csv()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let t = TableSource::from_csv_dir(&dir, &cat).unwrap();
        assert_eq!(t.regions().len(), 2);
        assert_eq!(t.intensity(cat.id_of("us-east-1").unwrap(), 1.5), 390.0);
        assert_eq!(t.intensity(cat.id_of("ca-central-1").unwrap(), 0.5), 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_dir_unknown_region_rejected() {
        let cat = RegionCatalog::aws_default();
        let dir = std::env::temp_dir().join(format!("caribou_csv_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("atlantis-1.csv"),
            CarbonSeries::new(0, vec![1.0]).to_csv(),
        )
        .unwrap();
        let err = TableSource::from_csv_dir(&dir, &cat).unwrap_err();
        assert!(err.contains("unknown region"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_dir_empty_rejected() {
        let cat = RegionCatalog::aws_default();
        let dir = std::env::temp_dir().join(format!("caribou_csv_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(TableSource::from_csv_dir(&dir, &cat).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forecasting_source_past_is_exact() {
        let (cat, src) = regional();
        let r = cat.id_of("us-east-1").unwrap();
        let f = ForecastingSource::fit(&src, &[r], 7.0 * 24.0 * 2.0, 48);
        let h = 7.0 * 24.0; // in the past
        assert_eq!(f.intensity(r, h), src.intensity(r, h));
    }

    #[test]
    fn forecast_tracks_diurnal_shape() {
        let (cat, src) = regional();
        let r = cat.id_of("us-west-1").unwrap();
        let t0 = 24.0 * 14.0;
        let f = ForecastingSource::fit(&src, &[r], t0, 24);
        // Compare forecast vs actual across the next day: the mean
        // absolute percentage error should be modest for a strongly
        // seasonal series.
        let mut mape = 0.0;
        for h in 0..24 {
            let actual = src.intensity(r, t0 + h as f64 + 0.5);
            let predicted = f.intensity(r, t0 + h as f64 + 0.5);
            mape += ((predicted - actual) / actual).abs();
        }
        mape /= 24.0;
        assert!(mape < 0.25, "MAPE {mape}");
    }

    #[test]
    fn forecast_horizon_clamps() {
        let (cat, src) = regional();
        let r = cat.id_of("us-east-1").unwrap();
        let f = ForecastingSource::fit(&src, &[r], 24.0 * 10.0, 24);
        // Query far beyond the horizon: clamps to the last forecast value.
        let v = f.intensity(r, 24.0 * 10.0 + 1000.0);
        assert!(v > 0.0);
    }
}
