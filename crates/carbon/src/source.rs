//! The carbon data source abstraction consumed by the Metrics Manager.
//!
//! The paper's Metrics Manager gathers carbon intensity from Electricity
//! Maps periodically and forecasts it with Holt-Winters smoothing once a
//! day (§7.2). [`CarbonDataSource`] is the common interface; the solver is
//! always handed a [`ForecastingSource`] so that deployment plans are
//! based on *forecast* data while experiment evaluation uses the *actual*
//! underlying source — separating the two is what lets the harness measure
//! forecast-induced suboptimality (Fig. 11, Fig. 13b).

use std::collections::HashMap;

use caribou_model::region::{RegionCatalog, RegionId};

use crate::error::CarbonError;
use crate::forecast::HoltWinters;
use crate::series::CarbonSeries;
use crate::synth::{GridProfile, SyntheticCarbonSource};

/// Provides grid average carbon intensity (ACI, §7.1) per region and hour.
pub trait CarbonDataSource {
    /// Intensity in gCO₂eq/kWh of `region`'s grid at fractional `hour`
    /// since the epoch.
    fn intensity(&self, region: RegionId, hour: f64) -> f64;

    /// Average intensity over `[from_hour, to_hour)` sampled hourly.
    fn average(&self, region: RegionId, from_hour: f64, to_hour: f64) -> f64 {
        let n = ((to_hour - from_hour).max(1.0)) as usize;
        let sum: f64 = (0..n)
            .map(|i| self.intensity(region, from_hour + i as f64 + 0.5))
            .sum();
        sum / n as f64
    }
}

impl<S: CarbonDataSource + ?Sized> CarbonDataSource for &S {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        (**self).intensity(region, hour)
    }
}

/// Adapter exposing a [`SyntheticCarbonSource`] per region via the catalog's
/// grid-zone mapping. Regions on the same grid (us-east-1 and us-east-2 on
/// PJM) automatically see identical intensity, as in §2.1.
#[derive(Debug, Clone)]
pub struct RegionalSource {
    zones: Vec<String>,
    profiles: Vec<GridProfile>,
    synth: SyntheticCarbonSource,
}

impl RegionalSource {
    /// Builds the adapter for a catalog, validating that every catalog
    /// region's grid zone is covered by the synthetic source. Resolving
    /// all zone profiles here makes the hot [`CarbonDataSource`] path
    /// infallible and lookup-free.
    pub fn new(catalog: &RegionCatalog, synth: SyntheticCarbonSource) -> Result<Self, CarbonError> {
        let zones: Vec<String> = catalog.iter().map(|(_, s)| s.grid_zone.clone()).collect();
        let profiles = zones
            .iter()
            .map(|z| {
                synth
                    .profile(z)
                    .cloned()
                    .ok_or_else(|| CarbonError::UnknownZone { zone: z.clone() })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RegionalSource {
            zones,
            profiles,
            synth,
        })
    }

    /// The grid zone backing a region.
    pub fn zone(&self, region: RegionId) -> &str {
        &self.zones[region.index()]
    }
}

impl CarbonDataSource for RegionalSource {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        let i = region.index();
        self.synth
            .profile_intensity(&self.profiles[i], &self.zones[i], hour)
    }
}

/// A source backed by explicit per-region series (e.g. real Electricity
/// Maps CSV extracts). Out-of-range hours fall back to the series mean.
#[derive(Debug, Clone, Default)]
pub struct TableSource {
    series: HashMap<RegionId, CarbonSeries>,
}

impl TableSource {
    /// Creates an empty table source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the series for a region.
    pub fn insert(&mut self, region: RegionId, series: CarbonSeries) {
        self.series.insert(region, series);
    }

    /// The series for a region, if present.
    pub fn series(&self, region: RegionId) -> Option<&CarbonSeries> {
        self.series.get(&region)
    }

    /// Loads one `<region-name>.csv` file per region from a directory —
    /// the drop-in path for real Electricity Maps extracts. Files whose
    /// stem does not resolve against the catalog are reported as errors;
    /// regions without a file are simply absent from the source.
    pub fn from_csv_dir(
        dir: &std::path::Path,
        catalog: &RegionCatalog,
    ) -> Result<Self, CarbonError> {
        let mut out = TableSource::new();
        let entries = std::fs::read_dir(dir).map_err(|e| CarbonError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| CarbonError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("csv") {
                continue;
            }
            let stem =
                path.file_stem()
                    .and_then(|s| s.to_str())
                    .ok_or_else(|| CarbonError::Parse {
                        path: path.display().to_string(),
                        message: "unreadable file name".into(),
                    })?;
            let region = catalog
                .id_of(stem)
                .ok_or_else(|| CarbonError::UnknownRegionName { name: stem.into() })?;
            let csv = std::fs::read_to_string(&path).map_err(|e| CarbonError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            let series = CarbonSeries::from_csv(&csv).map_err(|e| CarbonError::Parse {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            out.insert(region, series);
        }
        if out.series.is_empty() {
            return Err(CarbonError::Empty {
                path: dir.display().to_string(),
            });
        }
        Ok(out)
    }

    /// Intensity for a region, or a typed error if the region has no
    /// series. User-facing callers (the CLI's CSV drop-in path) should
    /// prefer this over the trait method.
    pub fn try_intensity(&self, region: RegionId, hour: f64) -> Result<f64, CarbonError> {
        let s = self
            .series
            .get(&region)
            .ok_or(CarbonError::UncoveredRegion { region })?;
        Ok(s.at(hour).unwrap_or_else(|| s.mean()))
    }

    /// Regions covered by this source.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> = self.series.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl CarbonDataSource for TableSource {
    /// Covered regions answer from their series; an uncovered region is a
    /// caller bug (validate with [`TableSource::try_intensity`] first), so
    /// debug builds assert and release builds fall back deterministically
    /// to the mean of all series means rather than aborting the process.
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        match self.try_intensity(region, hour) {
            Ok(v) => v,
            Err(e) => {
                debug_assert!(false, "{e}");
                let n = self.series.len().max(1) as f64;
                self.series.values().map(|s| s.mean()).sum::<f64>() / n
            }
        }
    }
}

/// A forecasting wrapper: knows the real source's history up to
/// `trained_at_hour` and answers future queries with Holt-Winters
/// forecasts, exactly as the Metrics Manager hands data to the solver
/// (§7.2).
pub struct ForecastingSource<'a, S: CarbonDataSource> {
    actual: &'a S,
    regions: Vec<RegionId>,
    trained_at_hour: f64,
    forecasts: HashMap<RegionId, Vec<f64>>,
    history_hours: usize,
}

impl<'a, S: CarbonDataSource> ForecastingSource<'a, S> {
    /// Fits forecasts at `trained_at_hour` using the trailing week of
    /// hourly history, for up to `horizon_hours` of future queries.
    pub fn fit(
        actual: &'a S,
        regions: &[RegionId],
        trained_at_hour: f64,
        horizon_hours: usize,
    ) -> Self {
        let history_hours = 7 * 24;
        let mut forecasts = HashMap::new();
        for &r in regions {
            let from = trained_at_hour - history_hours as f64;
            let history: Vec<f64> = (0..history_hours)
                .map(|i| actual.intensity(r, from + i as f64 + 0.5))
                .collect();
            let hw = HoltWinters::fit(&history, 24);
            forecasts.insert(r, hw.forecast(horizon_hours));
        }
        ForecastingSource {
            actual,
            regions: regions.to_vec(),
            trained_at_hour,
            forecasts,
            history_hours,
        }
    }

    /// The hour the forecast was trained at.
    pub fn trained_at(&self) -> f64 {
        self.trained_at_hour
    }

    /// Regions covered by the forecast.
    pub fn regions(&self) -> &[RegionId] {
        &self.regions
    }

    /// Length of the history window used for fitting, hours.
    pub fn history_hours(&self) -> usize {
        self.history_hours
    }

    /// Intensity for a region, or a typed error for a future query on a
    /// region outside the fitted set.
    pub fn try_intensity(&self, region: RegionId, hour: f64) -> Result<f64, CarbonError> {
        if hour < self.trained_at_hour {
            // The past is known.
            return Ok(self.actual.intensity(region, hour));
        }
        let steps = (hour - self.trained_at_hour).floor() as usize;
        let f = self
            .forecasts
            .get(&region)
            .ok_or(CarbonError::ForecastNotCovered { region })?;
        let idx = steps.min(f.len().saturating_sub(1));
        Ok(f.get(idx).copied().unwrap_or_else(|| {
            // Horizon exhausted with an empty forecast: fall back to the
            // actual source's long-run behaviour at the trained hour.
            self.actual.intensity(region, self.trained_at_hour)
        }))
    }
}

impl<S: CarbonDataSource> CarbonDataSource for ForecastingSource<'_, S> {
    /// Querying outside the fitted region set is a caller bug (the solver
    /// only evaluates permitted regions); debug builds assert and release
    /// builds fall back deterministically to the actual source instead of
    /// aborting the process.
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        match self.try_intensity(region, hour) {
            Ok(v) => v,
            Err(e) => {
                debug_assert!(false, "{e}");
                self.actual.intensity(region, hour)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn regional() -> (RegionCatalog, RegionalSource) {
        let cat = RegionCatalog::aws_default();
        let src = RegionalSource::new(&cat, SyntheticCarbonSource::aws_calibrated(3)).unwrap();
        (cat, src)
    }

    #[test]
    fn regional_source_rejects_uncovered_zone() {
        let cat = RegionCatalog::aws_default();
        // A synthetic source with no profiles covers no catalog zone.
        let empty = SyntheticCarbonSource::new(Default::default(), 1);
        let err = RegionalSource::new(&cat, empty).unwrap_err();
        assert!(matches!(err, CarbonError::UnknownZone { .. }), "{err:?}");
    }

    #[test]
    fn same_grid_regions_identical() {
        let (cat, src) = regional();
        let e1 = cat.id_of("us-east-1").unwrap();
        let e2 = cat.id_of("us-east-2").unwrap();
        for h in 0..48 {
            assert_eq!(src.intensity(e1, h as f64), src.intensity(e2, h as f64));
        }
    }

    #[test]
    fn average_matches_hourly_mean() {
        let (cat, src) = regional();
        let r = cat.id_of("ca-central-1").unwrap();
        let avg = src.average(r, 0.0, 24.0);
        let manual: f64 = (0..24)
            .map(|h| src.intensity(r, h as f64 + 0.5))
            .sum::<f64>()
            / 24.0;
        assert!((avg - manual).abs() < 1e-9);
    }

    #[test]
    fn table_source_round_trips() {
        let mut t = TableSource::new();
        t.insert(RegionId(0), CarbonSeries::new(0, vec![100.0, 200.0]));
        assert_eq!(t.intensity(RegionId(0), 0.5), 100.0);
        assert_eq!(t.intensity(RegionId(0), 1.5), 200.0);
        // Out-of-range falls back to the mean.
        assert_eq!(t.intensity(RegionId(0), 99.0), 150.0);
    }

    #[test]
    fn table_source_missing_region_is_a_typed_error() {
        let t = TableSource::new();
        let err = t.try_intensity(RegionId(5), 0.0).unwrap_err();
        assert_eq!(
            err,
            CarbonError::UncoveredRegion {
                region: RegionId(5)
            }
        );
        assert!(err.to_string().contains("no carbon series"));
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn table_source_missing_region_release_fallback_is_mean_of_means() {
        let mut t = TableSource::new();
        t.insert(RegionId(0), CarbonSeries::new(0, vec![100.0, 200.0]));
        t.insert(RegionId(1), CarbonSeries::new(0, vec![300.0]));
        // (150 + 300) / 2
        assert_eq!(t.intensity(RegionId(9), 0.0), 225.0);
    }

    #[test]
    fn csv_dir_round_trip() {
        let cat = RegionCatalog::aws_default();
        let dir = std::env::temp_dir().join(format!("caribou_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s1 = CarbonSeries::new(0, vec![380.0, 390.0, 370.0]);
        let s2 = CarbonSeries::new(0, vec![30.0, 32.0, 31.0]);
        std::fs::write(dir.join("us-east-1.csv"), s1.to_csv()).unwrap();
        std::fs::write(dir.join("ca-central-1.csv"), s2.to_csv()).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let t = TableSource::from_csv_dir(&dir, &cat).unwrap();
        assert_eq!(t.regions().len(), 2);
        assert_eq!(t.intensity(cat.id_of("us-east-1").unwrap(), 1.5), 390.0);
        assert_eq!(t.intensity(cat.id_of("ca-central-1").unwrap(), 0.5), 30.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_dir_unknown_region_rejected() {
        let cat = RegionCatalog::aws_default();
        let dir = std::env::temp_dir().join(format!("caribou_csv_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("atlantis-1.csv"),
            CarbonSeries::new(0, vec![1.0]).to_csv(),
        )
        .unwrap();
        let err = TableSource::from_csv_dir(&dir, &cat).unwrap_err();
        assert_eq!(
            err,
            CarbonError::UnknownRegionName {
                name: "atlantis-1".into()
            }
        );
        assert!(err.to_string().contains("unknown region"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_dir_empty_rejected() {
        let cat = RegionCatalog::aws_default();
        let dir = std::env::temp_dir().join(format!("caribou_csv_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(TableSource::from_csv_dir(&dir, &cat).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forecasting_source_past_is_exact() {
        let (cat, src) = regional();
        let r = cat.id_of("us-east-1").unwrap();
        let f = ForecastingSource::fit(&src, &[r], 7.0 * 24.0 * 2.0, 48);
        let h = 7.0 * 24.0; // in the past
        assert_eq!(f.intensity(r, h), src.intensity(r, h));
    }

    #[test]
    fn forecast_tracks_diurnal_shape() {
        let (cat, src) = regional();
        let r = cat.id_of("us-west-1").unwrap();
        let t0 = 24.0 * 14.0;
        let f = ForecastingSource::fit(&src, &[r], t0, 24);
        // Compare forecast vs actual across the next day: the mean
        // absolute percentage error should be modest for a strongly
        // seasonal series.
        let mut mape = 0.0;
        for h in 0..24 {
            let actual = src.intensity(r, t0 + h as f64 + 0.5);
            let predicted = f.intensity(r, t0 + h as f64 + 0.5);
            mape += ((predicted - actual) / actual).abs();
        }
        mape /= 24.0;
        assert!(mape < 0.25, "MAPE {mape}");
    }

    #[test]
    fn forecast_uncovered_region_is_a_typed_error() {
        let (cat, src) = regional();
        let r = cat.id_of("us-east-1").unwrap();
        let other = cat.id_of("ca-central-1").unwrap();
        let f = ForecastingSource::fit(&src, &[r], 24.0 * 10.0, 24);
        // Past queries are answered from the actual source even for
        // regions outside the fitted set.
        assert!(f.try_intensity(other, 1.0).is_ok());
        let err = f.try_intensity(other, 24.0 * 10.0 + 1.0).unwrap_err();
        assert_eq!(err, CarbonError::ForecastNotCovered { region: other });
        assert!(err.to_string().contains("not covered"));
    }

    #[test]
    fn forecast_horizon_clamps() {
        let (cat, src) = regional();
        let r = cat.id_of("us-east-1").unwrap();
        let f = ForecastingSource::fit(&src, &[r], 24.0 * 10.0, 24);
        // Query far beyond the horizon: clamps to the last forecast value.
        let v = f.intensity(r, 24.0 * 10.0 + 1000.0);
        assert!(v > 0.0);
    }
}
