//! Synthetic grid carbon-intensity generator.
//!
//! Reproduces the statistical structure of the Electricity Maps data the
//! paper uses (Fig. 2, §9.2): per-grid average levels, diurnal patterns
//! (amplified in solar-heavy grids like CAISO, where nights are far more
//! carbon-intense than days), weekly modulation, and smooth stochastic
//! variation. Averages are calibrated by construction: the shape terms are
//! zero-mean, so each grid's long-run average equals its configured
//! target, which pins the paper's reported relations (us-west-1 6.1% and
//! ca-central-1 91.5% below us-east-1 on average).

use std::collections::HashMap;

use caribou_model::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::error::CarbonError;
use crate::series::CarbonSeries;

/// Shape and level parameters for one electrical grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridProfile {
    /// Long-run average intensity, gCO₂eq/kWh.
    pub mean: f64,
    /// Relative amplitude of the generic diurnal cosine (peak in the
    /// evening, trough overnight).
    pub diurnal_amp: f64,
    /// Local hour of the diurnal peak.
    pub diurnal_peak_hour: f64,
    /// Relative depth of the solar midday dip (0 for non-solar grids).
    pub solar_depth: f64,
    /// Relative weekly modulation (weekend dip).
    pub weekly_amp: f64,
    /// Relative sigma of the smooth stochastic component.
    pub noise_sigma: f64,
    /// Offset from UTC in hours for local-time phasing.
    pub utc_offset: f64,
}

/// Deterministic synthetic carbon-intensity source keyed by grid zone.
#[derive(Debug, Clone)]
pub struct SyntheticCarbonSource {
    profiles: HashMap<String, GridProfile>,
    seed: u64,
}

/// Gaussian bump width (hours) of the solar dip.
const SOLAR_WIDTH_H: f64 = 3.2;
/// Local hour of maximum solar generation.
const SOLAR_PEAK_H: f64 = 13.0;
/// Hours between stochastic-noise knots (linear interpolation between).
const NOISE_KNOT_H: f64 = 4.0;

impl SyntheticCarbonSource {
    /// Creates a source with the given zone profiles and noise seed.
    pub fn new(profiles: HashMap<String, GridProfile>, seed: u64) -> Self {
        SyntheticCarbonSource { profiles, seed }
    }

    /// The default source calibrated to the grids of the AWS regions in
    /// the paper. The epoch (hour 0) is 2023-10-15 00:00 UTC, a Sunday.
    pub fn aws_calibrated(seed: u64) -> Self {
        let mut profiles = HashMap::new();
        let mut p = |zone: &str, profile: GridProfile| {
            profiles.insert(zone.to_string(), profile);
        };
        // PJM interconnection (us-east-1, us-east-2): high fossil share.
        p(
            "US-MIDA-PJM",
            GridProfile {
                mean: 380.0,
                diurnal_amp: 0.09,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.0,
                weekly_amp: 0.04,
                noise_sigma: 0.05,
                utc_offset: -5.0,
            },
        );
        // CAISO (us-west-1): solar-heavy; deep midday dip, carbon-intense
        // nights. Mean 6.1% below PJM (§9.2 I1).
        p(
            "US-CAL-CISO",
            GridProfile {
                mean: 380.0 * (1.0 - 0.061),
                diurnal_amp: 0.05,
                diurnal_peak_hour: 21.0,
                solar_depth: 0.55,
                weekly_amp: 0.02,
                noise_sigma: 0.06,
                utc_offset: -8.0,
            },
        );
        // Pacific Northwest (us-west-2): hydro/wind mix with thermal
        // backfill; mean comparable to PJM (§9.2 I1).
        p(
            "US-NW-PACW",
            GridProfile {
                mean: 372.0,
                diurnal_amp: 0.10,
                diurnal_peak_hour: 18.0,
                solar_depth: 0.08,
                weekly_amp: 0.05,
                noise_sigma: 0.08,
                utc_offset: -8.0,
            },
        );
        // Québec (ca-central-1): hydroelectric; consistently very low,
        // 91.5% below PJM on average (§9.2 I1).
        p(
            "CA-QC",
            GridProfile {
                mean: 380.0 * (1.0 - 0.915),
                diurnal_amp: 0.06,
                diurnal_peak_hour: 18.0,
                solar_depth: 0.0,
                weekly_amp: 0.02,
                noise_sigma: 0.05,
                utc_offset: -5.0,
            },
        );
        // Alberta (ca-west-1): gas-heavy.
        p(
            "CA-AB",
            GridProfile {
                mean: 560.0,
                diurnal_amp: 0.05,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.05,
                weekly_amp: 0.03,
                noise_sigma: 0.05,
                utc_offset: -7.0,
            },
        );
        // Ireland (eu-west-1): wind-dominated, volatile.
        p(
            "IE",
            GridProfile {
                mean: 300.0,
                diurnal_amp: 0.08,
                diurnal_peak_hour: 18.0,
                solar_depth: 0.05,
                weekly_amp: 0.03,
                noise_sigma: 0.18,
                utc_offset: 0.0,
            },
        );
        // Germany (eu-central-1): solar + coal swings.
        p(
            "DE",
            GridProfile {
                mean: 420.0,
                diurnal_amp: 0.08,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.30,
                weekly_amp: 0.08,
                noise_sigma: 0.10,
                utc_offset: 1.0,
            },
        );
        // New South Wales (ap-southeast-2): coal with growing solar.
        p(
            "AU-NSW",
            GridProfile {
                mean: 600.0,
                diurnal_amp: 0.06,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.25,
                weekly_amp: 0.03,
                noise_sigma: 0.06,
                utc_offset: 10.0,
            },
        );
        // MISO (GCP us-central1): coal/wind mix.
        p(
            "US-MIDW-MISO",
            GridProfile {
                mean: 470.0,
                diurnal_amp: 0.07,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.06,
                weekly_amp: 0.04,
                noise_sigma: 0.06,
                utc_offset: -6.0,
            },
        );
        // Belgium (GCP europe-west1): nuclear plus gas.
        p(
            "BE",
            GridProfile {
                mean: 150.0,
                diurnal_amp: 0.10,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.12,
                weekly_amp: 0.05,
                noise_sigma: 0.10,
                utc_offset: 1.0,
            },
        );
        // Finland (GCP europe-north1): nuclear/hydro/wind.
        p(
            "FI",
            GridProfile {
                mean: 80.0,
                diurnal_amp: 0.08,
                diurnal_peak_hour: 18.0,
                solar_depth: 0.0,
                weekly_amp: 0.04,
                noise_sigma: 0.12,
                utc_offset: 2.0,
            },
        );
        // Brazil central-south (sa-east-1): hydro-dominated.
        p(
            "BR-CS",
            GridProfile {
                mean: 110.0,
                diurnal_amp: 0.10,
                diurnal_peak_hour: 19.0,
                solar_depth: 0.05,
                weekly_amp: 0.04,
                noise_sigma: 0.09,
                utc_offset: -3.0,
            },
        );
        SyntheticCarbonSource::new(profiles, seed)
    }

    /// Whether the source knows a grid zone.
    pub fn has_zone(&self, zone: &str) -> bool {
        self.profiles.contains_key(zone)
    }

    /// The profile of a zone.
    pub fn profile(&self, zone: &str) -> Option<&GridProfile> {
        self.profiles.get(zone)
    }

    fn zone_seed(&self, zone: &str) -> u64 {
        // FNV-1a over the zone name, mixed with the source seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in zone.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^ self.seed.wrapping_mul(0x9e3779b97f4a7c15)
    }

    /// Smooth stochastic component: standard-normal knots every
    /// [`NOISE_KNOT_H`] hours, linearly interpolated, deterministic in
    /// `(seed, zone, knot index)`.
    fn noise(&self, zone: &str, hour: f64) -> f64 {
        let zs = self.zone_seed(zone);
        let knot = |k: i64| -> f64 {
            let mut rng = Pcg32::seed_stream(zs ^ (k as u64).wrapping_mul(0xd1342543de82ef95), zs);
            rng.standard_normal()
        };
        let pos = hour / NOISE_KNOT_H;
        let k0 = pos.floor();
        let frac = pos - k0;
        let k0 = k0 as i64;
        knot(k0) * (1.0 - frac) + knot(k0 + 1) * frac
    }

    /// Carbon intensity of a zone at fractional `hour` since the epoch,
    /// gCO₂eq/kWh. Unknown zones return the typed
    /// [`CarbonError::UnknownZone`] — callers resolving zones from user
    /// input surface it; adapters that validated coverage up front use
    /// [`SyntheticCarbonSource::profile_intensity`] on the hot path.
    pub fn zone_intensity(&self, zone: &str, hour: f64) -> Result<f64, CarbonError> {
        let p = self
            .profiles
            .get(zone)
            .ok_or_else(|| CarbonError::UnknownZone { zone: zone.into() })?;
        Ok(self.profile_intensity(p, zone, hour))
    }

    /// Intensity for an already-resolved profile: the infallible hot path
    /// behind [`SyntheticCarbonSource::zone_intensity`]. The `zone` name
    /// only seeds the deterministic noise stream, so profile and name must
    /// come from the same resolution.
    pub fn profile_intensity(&self, p: &GridProfile, zone: &str, hour: f64) -> f64 {
        let local = hour + p.utc_offset;
        let local_hod = local.rem_euclid(24.0);

        // Zero-mean diurnal cosine peaking at `diurnal_peak_hour`.
        let diurnal = (std::f64::consts::TAU * (local_hod - p.diurnal_peak_hour) / 24.0).cos();

        // Solar dip: Gaussian bump around midday, mean-removed so the shape
        // is zero-mean over the day.
        let bump = |h: f64| -> f64 {
            let d = h - SOLAR_PEAK_H;
            (-d * d / (2.0 * SOLAR_WIDTH_H * SOLAR_WIDTH_H)).exp()
        };
        // Mean of the bump over a 24 h period (numerically; constant).
        let bump_mean = SOLAR_WIDTH_H * (std::f64::consts::TAU).sqrt() / 24.0;
        let solar = bump(local_hod) - bump_mean;

        // Weekly modulation: weekend (epoch hour 0 is a Sunday) runs
        // cleaner. Zero-mean over the week: weekend (2 days) gets
        // -5/7 · amp... simplified to a centered two-level square wave.
        let day = (local / 24.0).rem_euclid(7.0);
        // Epoch is Sunday: days 0 (Sun) and 6 (Sat) are the weekend.
        let weekend = !(1.0..6.0).contains(&day);
        let weekly = if weekend { -5.0 / 7.0 } else { 2.0 / 7.0 };

        let shape = 1.0 + p.diurnal_amp * diurnal - p.solar_depth * solar
            + p.weekly_amp * weekly
            + p.noise_sigma * self.noise(zone, hour);
        (p.mean * shape).max(1.0)
    }

    /// Materializes an hourly series for a zone.
    pub fn zone_series(
        &self,
        zone: &str,
        start_hour: i64,
        hours: usize,
    ) -> Result<CarbonSeries, CarbonError> {
        let p = self
            .profiles
            .get(zone)
            .ok_or_else(|| CarbonError::UnknownZone { zone: zone.into() })?;
        let values = (0..hours)
            .map(|i| self.profile_intensity(p, zone, (start_hour + i as i64) as f64 + 0.5))
            .collect();
        Ok(CarbonSeries::new(start_hour, values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WEEK_H: usize = 7 * 24;

    fn source() -> SyntheticCarbonSource {
        SyntheticCarbonSource::aws_calibrated(7)
    }

    fn mean_over(src: &SyntheticCarbonSource, zone: &str, hours: usize) -> f64 {
        src.zone_series(zone, 0, hours).unwrap().mean()
    }

    #[test]
    fn quebec_far_below_pjm() {
        let s = source();
        let pjm = mean_over(&s, "US-MIDA-PJM", 4 * WEEK_H);
        let qc = mean_over(&s, "CA-QC", 4 * WEEK_H);
        let reduction = 1.0 - qc / pjm;
        assert!((reduction - 0.915).abs() < 0.03, "reduction {reduction}");
    }

    #[test]
    fn caiso_slightly_below_pjm() {
        let s = source();
        let pjm = mean_over(&s, "US-MIDA-PJM", 4 * WEEK_H);
        let ciso = mean_over(&s, "US-CAL-CISO", 4 * WEEK_H);
        let reduction = 1.0 - ciso / pjm;
        assert!((reduction - 0.061).abs() < 0.04, "reduction {reduction}");
    }

    #[test]
    fn pacw_comparable_to_pjm() {
        let s = source();
        let pjm = mean_over(&s, "US-MIDA-PJM", 4 * WEEK_H);
        let pacw = mean_over(&s, "US-NW-PACW", 4 * WEEK_H);
        assert!((pacw / pjm - 1.0).abs() < 0.08, "ratio {}", pacw / pjm);
    }

    #[test]
    fn caiso_solar_dip_visible() {
        // Nights in California should be much more carbon-intense than
        // midday (Fig. 2: "much greater carbon intensity at night").
        let s = source();
        let mut day = 0.0;
        let mut night = 0.0;
        for d in 0..7 {
            // Local 13:00 is UTC 21:00; local 02:00 is UTC 10:00.
            day += s
                .zone_intensity("US-CAL-CISO", d as f64 * 24.0 + 21.0)
                .unwrap();
            night += s
                .zone_intensity("US-CAL-CISO", d as f64 * 24.0 + 10.0)
                .unwrap();
        }
        assert!(night > day * 1.3, "day {day} night {night}");
    }

    #[test]
    fn quebec_is_flat() {
        let s = source();
        let series = s.zone_series("CA-QC", 0, WEEK_H).unwrap();
        let rel_spread = (series.max() - series.min()) / series.mean();
        assert!(rel_spread < 0.6, "spread {rel_spread}");
    }

    #[test]
    fn deterministic_across_instances() {
        let a = SyntheticCarbonSource::aws_calibrated(7);
        let b = SyntheticCarbonSource::aws_calibrated(7);
        for h in 0..100 {
            assert_eq!(
                a.zone_intensity("US-MIDA-PJM", h as f64).unwrap(),
                b.zone_intensity("US-MIDA-PJM", h as f64).unwrap()
            );
        }
    }

    #[test]
    fn different_seed_changes_noise_not_mean() {
        let a = SyntheticCarbonSource::aws_calibrated(7);
        let b = SyntheticCarbonSource::aws_calibrated(8);
        let va = a.zone_intensity("US-MIDA-PJM", 10.0).unwrap();
        let vb = b.zone_intensity("US-MIDA-PJM", 10.0).unwrap();
        assert_ne!(va, vb);
        let ma = mean_over(&a, "US-MIDA-PJM", 8 * WEEK_H);
        let mb = mean_over(&b, "US-MIDA-PJM", 8 * WEEK_H);
        assert!((ma / mb - 1.0).abs() < 0.03);
    }

    #[test]
    fn intensity_always_positive() {
        let s = source();
        for zone in ["US-MIDA-PJM", "US-CAL-CISO", "CA-QC", "IE", "BR-CS"] {
            for h in 0..WEEK_H {
                assert!(s.zone_intensity(zone, h as f64).unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn all_aws_catalog_zones_covered() {
        use caribou_model::region::RegionCatalog;
        let s = source();
        for (_, spec) in RegionCatalog::aws_default().iter() {
            assert!(s.has_zone(&spec.grid_zone), "missing {}", spec.grid_zone);
        }
    }

    #[test]
    fn unknown_zone_is_a_typed_error() {
        let err = source().zone_intensity("XX-NOWHERE", 0.0).unwrap_err();
        assert_eq!(
            err,
            CarbonError::UnknownZone {
                zone: "XX-NOWHERE".into()
            }
        );
        assert!(err.to_string().contains("XX-NOWHERE"));
        assert!(source().zone_series("XX-NOWHERE", 0, 4).is_err());
    }

    #[test]
    fn diurnal_pattern_repeats_daily() {
        // Autocorrelation at lag 24 h should be clearly positive for PJM.
        let s = source();
        let series = s.zone_series("US-MIDA-PJM", 0, 14 * 24).unwrap();
        let v = &series.values;
        let mean = series.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..v.len() - 24 {
            num += (v[i] - mean) * (v[i + 24] - mean);
        }
        for x in v {
            den += (x - mean) * (x - mean);
        }
        let ac = num / den;
        assert!(ac > 0.2, "lag-24 autocorrelation {ac}");
    }
}
