//! Marginal carbon intensity (MCI) signal (§7.1's open design choice).
//!
//! The paper schedules on *average* carbon intensity (ACI) because MCI
//! signals are uncertain and hard to verify, while noting that "there is
//! growing interest in using MCI for carbon-aware optimization, but it can
//! lead to different decisions". This module provides a synthetic MCI
//! derived from an ACI source so that difference can be studied (the
//! `ablation_signal` experiment):
//!
//! The marginal generator on most grids is a dispatchable fossil unit
//! (usually gas, ~450 gCO₂eq/kWh), largely independent of how clean the
//! *average* mix is — the canonical example being hydro-heavy Québec,
//! whose ACI is tiny but whose marginal megawatt is often imported or
//! gas-fired. The model blends a gas-peaker base with a coupling to the
//! ACI signal (renewables-on-the-margin hours) plus the ACI's own diurnal
//! phase:
//!
//! `MCI(r, t) = (1 − c) · I_gas + c · ACI(r, t) + spread · z(r, t)`
//!
//! where `z` is smooth zero-mean noise. With the default coupling of 0.3
//! the cross-region MCI differential is far smaller than the ACI one —
//! reproducing the literature's observation that MCI-based optimization
//! sees much less opportunity in geospatial shifting.

use caribou_model::region::RegionId;

use crate::source::CarbonDataSource;

/// Combustion intensity of a gas peaker, gCO₂eq/kWh.
pub const GAS_PEAKER_INTENSITY: f64 = 450.0;

/// A synthetic marginal-carbon-intensity view over an ACI source.
#[derive(Debug, Clone)]
pub struct MarginalSource<S> {
    aci: S,
    /// Weight of the ACI signal in the blend, `[0, 1]`.
    pub coupling: f64,
    /// Amplitude of the extra marginal-unit volatility, gCO₂eq/kWh.
    pub spread: f64,
}

impl<S> MarginalSource<S> {
    /// Wraps an ACI source with the default literature-flavored blend.
    pub fn new(aci: S) -> Self {
        MarginalSource {
            aci,
            coupling: 0.3,
            spread: 60.0,
        }
    }

    /// The wrapped ACI source.
    pub fn aci(&self) -> &S {
        &self.aci
    }
}

impl<S: CarbonDataSource> CarbonDataSource for MarginalSource<S> {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        let aci = self.aci.intensity(region, hour);
        // Smooth deterministic zero-mean wobble per (region, 3 h window).
        let knot = |k: i64| -> f64 {
            let mut h = (k as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ ((region.0 as u64) << 32);
            h ^= h >> 29;
            h = h.wrapping_mul(0xbf58476d1ce4e5b9);
            h ^= h >> 32;
            (h as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let pos = hour / 3.0;
        let k0 = pos.floor();
        let frac = pos - k0;
        let z = knot(k0 as i64) * (1.0 - frac) + knot(k0 as i64 + 1) * frac;
        ((1.0 - self.coupling) * GAS_PEAKER_INTENSITY + self.coupling * aci + self.spread * z)
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::CarbonSeries;
    use crate::source::TableSource;

    fn aci() -> TableSource {
        let mut t = TableSource::new();
        t.insert(RegionId(0), CarbonSeries::new(0, vec![380.0; 48])); // fossil
        t.insert(RegionId(1), CarbonSeries::new(0, vec![32.0; 48])); // hydro
        t
    }

    #[test]
    fn hydro_grid_marginal_far_above_its_average() {
        let m = MarginalSource::new(aci());
        let hydro_aci = m.aci().intensity(RegionId(1), 5.0);
        let hydro_mci = m.intensity(RegionId(1), 5.0);
        assert!(
            hydro_mci > hydro_aci * 5.0,
            "aci {hydro_aci} mci {hydro_mci}"
        );
    }

    #[test]
    fn mci_differential_much_smaller_than_aci_differential() {
        let m = MarginalSource::new(aci());
        let mut aci_diff = 0.0;
        let mut mci_diff = 0.0;
        for h in 0..48 {
            let t = h as f64 + 0.5;
            aci_diff += m.aci().intensity(RegionId(0), t) - m.aci().intensity(RegionId(1), t);
            mci_diff += (m.intensity(RegionId(0), t) - m.intensity(RegionId(1), t)).abs();
        }
        assert!(
            mci_diff < aci_diff * 0.5,
            "MCI differential should shrink: aci {aci_diff} mci {mci_diff}"
        );
    }

    #[test]
    fn deterministic_and_positive() {
        let m = MarginalSource::new(aci());
        for h in 0..100 {
            let t = h as f64 * 0.7;
            let v = m.intensity(RegionId(0), t);
            assert!(v > 0.0 && v.is_finite());
            assert_eq!(v, m.intensity(RegionId(0), t));
        }
    }

    #[test]
    fn coupling_one_tracks_aci_up_to_spread() {
        let mut m = MarginalSource::new(aci());
        m.coupling = 1.0;
        m.spread = 0.0;
        assert!((m.intensity(RegionId(0), 3.0) - 380.0).abs() < 1e-9);
        assert!((m.intensity(RegionId(1), 3.0) - 32.0).abs() < 1e-9);
    }
}
