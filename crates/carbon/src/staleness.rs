//! Stale-forecast degradation: a TTL'd wrapper around any carbon source.
//!
//! GreenWhisk-style emission-aware scheduling has to keep working when
//! the carbon signal goes dark. [`StaleAwareSource`] wraps an inner
//! [`CarbonDataSource`] with a set of outage windows (hours during which
//! the forecast feed is unreachable) and degrades through a ladder:
//!
//! 1. **Fresh** — no outage active: answer from the inner source.
//! 2. **LastKnownGood** — an outage is active but younger than the TTL:
//!    answer with the intensity frozen at the outage start (the last
//!    value the feed served before going dark).
//! 3. **YearlyAverage** — the outage has outlived the TTL: answer with
//!    the region's precomputed yearly-average intensity, the weakest
//!    signal that is still region-shaped.
//!
//! Every answer is a pure function of `(region, hour)` — last-known-good
//! is frozen at the *window start*, never at "whenever we last happened
//! to ask" — so wrapped campaigns stay bit-identical at any worker
//! count. Query counts per rung are kept in atomics and flushed as
//! `carbon.stale.*` telemetry by the coordinator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use caribou_model::region::RegionId;

use crate::source::CarbonDataSource;

/// Which rung of the degradation ladder answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationLevel {
    /// Forecast feed healthy; inner source answered.
    Fresh,
    /// Feed dark but within TTL; frozen at the outage start.
    LastKnownGood,
    /// Feed dark past TTL; yearly-average intensity.
    YearlyAverage,
}

impl DegradationLevel {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradationLevel::Fresh => "fresh",
            DegradationLevel::LastKnownGood => "last-known-good",
            DegradationLevel::YearlyAverage => "yearly-average",
        }
    }
}

/// A carbon source that degrades gracefully through forecast outages.
pub struct StaleAwareSource<S> {
    inner: S,
    /// Half-open `[start, end)` outage windows in *hours*.
    outages: Vec<(f64, f64)>,
    ttl_hours: f64,
    yearly: HashMap<RegionId, f64>,
    fresh_queries: AtomicU64,
    lkg_queries: AtomicU64,
    yearly_queries: AtomicU64,
}

impl<S: CarbonDataSource> StaleAwareSource<S> {
    /// Wraps `inner` with `outages` (hour windows) and a TTL. Yearly
    /// averages for `regions` are precomputed over hours `[0, 8760)` so
    /// the deepest rung stays O(1) per query.
    pub fn new(inner: S, regions: &[RegionId], outages: Vec<(f64, f64)>, ttl_hours: f64) -> Self {
        assert!(ttl_hours > 0.0, "staleness TTL must be positive");
        for &(s, e) in &outages {
            assert!(e > s, "outage window must be non-empty (half-open)");
        }
        let yearly = regions
            .iter()
            .map(|&r| (r, inner.average(r, 0.0, 8760.0)))
            .collect();
        StaleAwareSource {
            inner,
            outages,
            ttl_hours,
            yearly,
            fresh_queries: AtomicU64::new(0),
            lkg_queries: AtomicU64::new(0),
            yearly_queries: AtomicU64::new(0),
        }
    }

    /// Earliest start among outage windows active at `hour`.
    fn outage_start(&self, hour: f64) -> Option<f64> {
        self.outages
            .iter()
            .filter(|&&(s, e)| hour >= s && hour < e)
            .map(|&(s, _)| s)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.min(s))))
    }

    /// Which rung of the ladder answers a query at `hour`.
    pub fn degradation_level(&self, hour: f64) -> DegradationLevel {
        match self.outage_start(hour) {
            None => DegradationLevel::Fresh,
            Some(start) if hour - start <= self.ttl_hours => DegradationLevel::LastKnownGood,
            Some(_) => DegradationLevel::YearlyAverage,
        }
    }

    /// Query counts per rung: `(fresh, last_known_good, yearly_average)`.
    pub fn query_counts(&self) -> (u64, u64, u64) {
        (
            self.fresh_queries.load(Ordering::Relaxed),
            self.lkg_queries.load(Ordering::Relaxed),
            self.yearly_queries.load(Ordering::Relaxed),
        )
    }

    /// Emits `carbon.stale.*` counters. Call from the coordinator only,
    /// after workers are done, so counter order never depends on thread
    /// interleaving.
    pub fn flush_telemetry(&self) {
        if !caribou_telemetry::is_enabled() {
            return;
        }
        let (fresh, lkg, yearly) = self.query_counts();
        caribou_telemetry::count("carbon.stale.fresh", fresh);
        caribou_telemetry::count("carbon.stale.last_known_good", lkg);
        caribou_telemetry::count("carbon.stale.yearly_average", yearly);
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CarbonDataSource> CarbonDataSource for StaleAwareSource<S> {
    fn intensity(&self, region: RegionId, hour: f64) -> f64 {
        match self.outage_start(hour) {
            None => {
                self.fresh_queries.fetch_add(1, Ordering::Relaxed);
                self.inner.intensity(region, hour)
            }
            Some(start) if hour - start <= self.ttl_hours => {
                self.lkg_queries.fetch_add(1, Ordering::Relaxed);
                // Frozen at the instant the feed went dark.
                self.inner.intensity(region, start)
            }
            Some(_) => {
                self.yearly_queries.fetch_add(1, Ordering::Relaxed);
                match self.yearly.get(&region) {
                    Some(&v) => v,
                    // Region outside the precomputed set: compute the
                    // same average directly (slow but correct).
                    None => self.inner.average(region, 0.0, 8760.0),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::CarbonSeries;
    use crate::source::TableSource;

    fn ramp_source() -> TableSource {
        // Intensity == hour index, so rungs are easy to tell apart.
        let mut t = TableSource::new();
        let values: Vec<f64> = (0..8760).map(|h| h as f64).collect();
        t.insert(RegionId(0), CarbonSeries::new(0, values));
        t
    }

    #[test]
    fn fresh_passes_through() {
        let s = StaleAwareSource::new(ramp_source(), &[RegionId(0)], vec![], 2.0);
        assert_eq!(s.degradation_level(5.5), DegradationLevel::Fresh);
        assert_eq!(s.intensity(RegionId(0), 5.5), 5.0);
        assert_eq!(s.query_counts(), (1, 0, 0));
    }

    #[test]
    fn ladder_degrades_fresh_to_lkg_to_yearly() {
        let s = StaleAwareSource::new(ramp_source(), &[RegionId(0)], vec![(10.0, 20.0)], 2.0);
        // Before the outage: fresh.
        assert_eq!(s.degradation_level(9.9), DegradationLevel::Fresh);
        assert_eq!(s.intensity(RegionId(0), 9.9), 9.0);
        // Inside TTL: frozen at the outage start (hour 10).
        assert_eq!(s.degradation_level(11.0), DegradationLevel::LastKnownGood);
        assert_eq!(s.intensity(RegionId(0), 11.0), 10.0);
        assert_eq!(s.intensity(RegionId(0), 12.0), 10.0);
        // Past TTL: yearly average of 0..8759 == 4379.5.
        assert_eq!(s.degradation_level(15.0), DegradationLevel::YearlyAverage);
        assert_eq!(s.intensity(RegionId(0), 15.0), 4379.5);
        // Outage over (half-open): fresh again.
        assert_eq!(s.degradation_level(20.0), DegradationLevel::Fresh);
        assert_eq!(s.intensity(RegionId(0), 20.0), 20.0);
        assert_eq!(s.query_counts(), (2, 2, 1));
    }

    #[test]
    fn ttl_boundary_is_inclusive_for_lkg() {
        let s = StaleAwareSource::new(ramp_source(), &[RegionId(0)], vec![(0.0, 100.0)], 2.0);
        assert_eq!(s.degradation_level(2.0), DegradationLevel::LastKnownGood);
        assert_eq!(s.degradation_level(2.0001), DegradationLevel::YearlyAverage);
    }

    #[test]
    fn answers_are_pure_functions_of_region_and_hour() {
        // Query order must not change any answer (worker-count
        // independence): interleave two orders and compare.
        let hours = [5.0, 11.0, 15.0, 25.0, 11.5, 14.9];
        let a = StaleAwareSource::new(ramp_source(), &[RegionId(0)], vec![(10.0, 20.0)], 2.0);
        let b = StaleAwareSource::new(ramp_source(), &[RegionId(0)], vec![(10.0, 20.0)], 2.0);
        let fwd: Vec<f64> = hours.iter().map(|&h| a.intensity(RegionId(0), h)).collect();
        let rev: Vec<f64> = hours
            .iter()
            .rev()
            .map(|&h| b.intensity(RegionId(0), h))
            .collect();
        let rev_fwd: Vec<f64> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev_fwd);
    }

    #[test]
    fn overlapping_outages_age_from_earliest_start() {
        let s = StaleAwareSource::new(
            ramp_source(),
            &[RegionId(0)],
            vec![(10.0, 30.0), (12.0, 40.0)],
            5.0,
        );
        // At hour 16 the earliest active start is 10 → age 6 > TTL 5.
        assert_eq!(s.degradation_level(16.0), DegradationLevel::YearlyAverage);
        // At hour 32 only the second window is active → age 20 > TTL.
        assert_eq!(s.degradation_level(32.0), DegradationLevel::YearlyAverage);
        assert_eq!(s.degradation_level(14.0), DegradationLevel::LastKnownGood);
    }

    #[test]
    fn uncovered_region_still_answers_yearly() {
        let s = StaleAwareSource::new(ramp_source(), &[], vec![(0.0, 100.0)], 1.0);
        assert_eq!(s.intensity(RegionId(0), 50.0), 4379.5);
    }

    #[test]
    #[should_panic]
    fn empty_outage_window_rejected() {
        StaleAwareSource::new(ramp_source(), &[RegionId(0)], vec![(5.0, 5.0)], 1.0);
    }
}
