//! Hourly carbon-intensity time series.

use serde::{Deserialize, Serialize};

/// An hourly carbon-intensity series in gCO₂eq/kWh.
///
/// # Examples
///
/// ```
/// use caribou_carbon::series::CarbonSeries;
///
/// let s = CarbonSeries::from_csv("hour,gco2eq_per_kwh\n0,380.0\n1,32.5\n").unwrap();
/// assert_eq!(s.at(1.25), Some(32.5));
/// assert_eq!(s.at(5.0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonSeries {
    /// Hour index (since the simulation epoch) of the first sample.
    pub start_hour: i64,
    /// Hourly samples.
    pub values: Vec<f64>,
}

impl CarbonSeries {
    /// Creates a series starting at `start_hour`.
    pub fn new(start_hour: i64, values: Vec<f64>) -> Self {
        CarbonSeries { start_hour, values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sample covering `hour` (floor semantics), or `None` when out of
    /// range.
    pub fn at(&self, hour: f64) -> Option<f64> {
        let idx = hour.floor() as i64 - self.start_hour;
        if idx < 0 {
            return None;
        }
        self.values.get(idx as usize).copied()
    }

    /// Arithmetic mean of the series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns a sub-series covering `[from_hour, to_hour)`.
    pub fn slice(&self, from_hour: i64, to_hour: i64) -> CarbonSeries {
        let lo = (from_hour - self.start_hour).max(0) as usize;
        let hi = ((to_hour - self.start_hour).max(0) as usize).min(self.values.len());
        CarbonSeries {
            start_hour: self.start_hour + lo as i64,
            values: self.values[lo.min(hi)..hi].to_vec(),
        }
    }

    /// Serializes as `hour,gco2eq_per_kwh` CSV lines with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("hour,gco2eq_per_kwh\n");
        for (i, v) in self.values.iter().enumerate() {
            out.push_str(&format!("{},{v}\n", self.start_hour + i as i64));
        }
        out
    }

    /// Parses the CSV format written by [`CarbonSeries::to_csv`]. Hours
    /// must be contiguous and ascending.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut start_hour = None;
        let mut next_hour = 0i64;
        let mut values = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.starts_with("hour")) {
                continue;
            }
            let (h, v) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: expected `hour,value`", lineno + 1))?;
            let h: i64 = h
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad hour: {e}", lineno + 1))?;
            let v: f64 = v
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
            match start_hour {
                None => {
                    start_hour = Some(h);
                    next_hour = h + 1;
                }
                Some(_) => {
                    if h != next_hour {
                        return Err(format!(
                            "line {}: hours must be contiguous (expected {next_hour}, got {h})",
                            lineno + 1
                        ));
                    }
                    next_hour += 1;
                }
            }
            values.push(v);
        }
        let start_hour = start_hour.ok_or("empty series")?;
        Ok(CarbonSeries { start_hour, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_uses_floor_semantics() {
        let s = CarbonSeries::new(10, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.at(10.0), Some(1.0));
        assert_eq!(s.at(10.9), Some(1.0));
        assert_eq!(s.at(11.0), Some(2.0));
        assert_eq!(s.at(12.999), Some(3.0));
        assert_eq!(s.at(13.0), None);
        assert_eq!(s.at(9.0), None);
    }

    #[test]
    fn statistics() {
        let s = CarbonSeries::new(0, vec![10.0, 20.0, 30.0]);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 30.0);
    }

    #[test]
    fn slice_respects_bounds() {
        let s = CarbonSeries::new(5, vec![1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(6, 8);
        assert_eq!(sub.start_hour, 6);
        assert_eq!(sub.values, vec![2.0, 3.0]);
        let all = s.slice(0, 100);
        assert_eq!(all.values.len(), 4);
        let none = s.slice(100, 200);
        assert!(none.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let s = CarbonSeries::new(3, vec![382.5, 390.25, 12.0]);
        let csv = s.to_csv();
        let back = CarbonSeries::from_csv(&csv).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn csv_rejects_gaps() {
        let csv = "hour,gco2eq_per_kwh\n0,1.0\n2,2.0\n";
        assert!(CarbonSeries::from_csv(csv).is_err());
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(CarbonSeries::from_csv("hour,g\nx,y\n").is_err());
        assert!(CarbonSeries::from_csv("").is_err());
    }
}
