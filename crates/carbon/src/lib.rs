//! Carbon-intensity data for the Caribou framework.
//!
//! The paper drives its evaluation with Electricity Maps data for the
//! grids backing the AWS North American regions over 2023-10-15 to
//! 2023-10-21 (§9.1). This crate provides:
//!
//! * [`series`] — hourly carbon-intensity time series with CSV
//!   import/export, so real Electricity Maps extracts can be dropped in;
//! * [`synth`] — a synthetic generator calibrated to the paper's reported
//!   statistics (ca-central-1 averages 91.5% below us-east-1, us-west-1
//!   6.1% below with a deep solar midday dip, us-west-2 comparable, §9.2);
//! * [`source`] — the [`source::CarbonDataSource`] abstraction the Metrics
//!   Manager consumes;
//! * [`forecast`] — Holt-Winters triple exponential smoothing with a
//!   24-hour season, refit daily on the trailing week (§7.2);
//! * [`route`] — transmission-route carbon intensity (the `I_route` of
//!   Eq. 7.5);
//! * [`marginal`] — a synthetic marginal-carbon-intensity (MCI) view for
//!   studying the paper's ACI-vs-MCI design choice (§7.1).
//!
//! Time is measured in fractional hours since the simulation epoch, which
//! experiments anchor at 2023-10-15 00:00 UTC.

pub mod error;
pub mod forecast;
pub mod marginal;
pub mod route;
pub mod series;
pub mod source;
pub mod staleness;
pub mod synth;

pub use error::CarbonError;
pub use forecast::HoltWinters;
pub use marginal::MarginalSource;
pub use series::CarbonSeries;
pub use source::{CarbonDataSource, ForecastingSource, TableSource};
pub use synth::SyntheticCarbonSource;
