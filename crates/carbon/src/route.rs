//! Transmission-route carbon intensity (the `I_route` of Eq. 7.5).
//!
//! The paper estimates transmission carbon as
//! `Carbon_tran = I_route × EF_trans × S` where `I_route` is "the average
//! carbon intensity of the route between source and destination" — a
//! simplified version of the hop-weighted methodology of Tabaeiaghdaei et
//! al. We model the route intensity as the mean of the endpoint grids,
//! with an optional multi-segment refinement that linearly interpolates
//! virtual hops along the great-circle path.

use caribou_model::region::{RegionCatalog, RegionId};

use crate::source::CarbonDataSource;

/// Route intensity as the average of the two endpoint grids (the paper's
/// simplification).
pub fn endpoint_average<S: CarbonDataSource>(
    source: &S,
    from: RegionId,
    to: RegionId,
    hour: f64,
) -> f64 {
    0.5 * (source.intensity(from, hour) + source.intensity(to, hour))
}

/// Hop-weighted route intensity: splits the route into `segments` virtual
/// hops and linearly blends the endpoint intensities along the path. With
/// `segments == 1` this reduces to [`endpoint_average`]. Exposed for the
/// sensitivity analysis of alternative transmission models (§7.1: "the
/// Metrics Manager can seamlessly integrate alternative models").
pub fn hop_weighted<S: CarbonDataSource>(
    source: &S,
    _catalog: &RegionCatalog,
    from: RegionId,
    to: RegionId,
    hour: f64,
    segments: usize,
) -> f64 {
    let segments = segments.max(1);
    let a = source.intensity(from, hour);
    let b = source.intensity(to, hour);
    // Midpoints of `segments` equal hops along the path.
    let mut total = 0.0;
    for s in 0..segments {
        let frac = (s as f64 + 0.5) / segments as f64;
        total += a * (1.0 - frac) + b * frac;
    }
    total / segments as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::CarbonSeries;
    use crate::source::TableSource;

    fn table() -> TableSource {
        let mut t = TableSource::new();
        t.insert(RegionId(0), CarbonSeries::new(0, vec![100.0; 24]));
        t.insert(RegionId(1), CarbonSeries::new(0, vec![300.0; 24]));
        t
    }

    #[test]
    fn endpoint_average_is_mean() {
        let t = table();
        let v = endpoint_average(&t, RegionId(0), RegionId(1), 0.5);
        assert!((v - 200.0).abs() < 1e-12);
    }

    #[test]
    fn same_region_route_is_local_intensity() {
        let t = table();
        let v = endpoint_average(&t, RegionId(0), RegionId(0), 0.5);
        assert!((v - 100.0).abs() < 1e-12);
    }

    #[test]
    fn hop_weighted_reduces_to_average_for_linear_blend() {
        let t = table();
        let cat = caribou_model::region::RegionCatalog::aws_default();
        let one = hop_weighted(&t, &cat, RegionId(0), RegionId(1), 0.5, 1);
        let many = hop_weighted(&t, &cat, RegionId(0), RegionId(1), 0.5, 10);
        assert!((one - 200.0).abs() < 1e-12);
        // Linear blend of linear interpolation equals the average too.
        assert!((many - 200.0).abs() < 1e-9);
    }
}
