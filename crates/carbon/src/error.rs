//! Typed errors for carbon data sources.
//!
//! Historically the carbon sources aborted the process on uncovered
//! regions or unknown grid zones; user-reachable paths (CLI region
//! arguments, CSV drop-in directories) now surface these as values so
//! callers can report one-line errors instead of backtraces.

use caribou_model::region::RegionId;

/// What went wrong while resolving or loading carbon-intensity data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CarbonError {
    /// No carbon series covers the region.
    UncoveredRegion {
        /// The region without data.
        region: RegionId,
    },
    /// The synthetic source has no profile for the grid zone.
    UnknownZone {
        /// The unresolvable zone name.
        zone: String,
    },
    /// The forecast was not fitted for the region.
    ForecastNotCovered {
        /// The region outside the fitted set.
        region: RegionId,
    },
    /// A carbon data file or directory could not be read.
    Io {
        /// Offending path.
        path: String,
        /// Underlying I/O message.
        message: String,
    },
    /// A carbon CSV failed to parse.
    Parse {
        /// Offending path.
        path: String,
        /// Parser message.
        message: String,
    },
    /// A CSV file name does not resolve to a catalog region.
    UnknownRegionName {
        /// The unresolvable file stem.
        name: String,
    },
    /// A directory contained no region CSVs.
    Empty {
        /// The directory scanned.
        path: String,
    },
}

impl std::fmt::Display for CarbonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CarbonError::UncoveredRegion { region } => {
                write!(f, "no carbon series for region {region}")
            }
            CarbonError::UnknownZone { zone } => write!(f, "unknown grid zone `{zone}`"),
            CarbonError::ForecastNotCovered { region } => {
                write!(f, "region {region} not covered by forecast")
            }
            CarbonError::Io { path, message } => write!(f, "{path}: {message}"),
            CarbonError::Parse { path, message } => write!(f, "{path}: {message}"),
            CarbonError::UnknownRegionName { name } => write!(f, "unknown region `{name}`"),
            CarbonError::Empty { path } => write!(f, "{path}: no region CSV files found"),
        }
    }
}

impl std::error::Error for CarbonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        let cases = [
            CarbonError::UncoveredRegion {
                region: RegionId(3),
            },
            CarbonError::UnknownZone {
                zone: "XX-NOWHERE".into(),
            },
            CarbonError::ForecastNotCovered {
                region: RegionId(1),
            },
            CarbonError::Io {
                path: "/tmp/x".into(),
                message: "denied".into(),
            },
            CarbonError::Parse {
                path: "a.csv".into(),
                message: "bad float".into(),
            },
            CarbonError::UnknownRegionName {
                name: "atlantis-1".into(),
            },
            CarbonError::Empty {
                path: "/tmp/dir".into(),
            },
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty() && !s.contains('\n'), "{s:?}");
        }
    }
}
