//! Property-based tests for the workflow model.

use caribou_model::constraints::{Constraints, RegionFilter};
use caribou_model::dag::{Edge, NodeId, NodeMeta, WorkflowDag};
use caribou_model::dist::DistSpec;
use caribou_model::plan::{DeploymentPlan, HourlyPlans};
use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;
use proptest::prelude::*;

fn meta(i: usize) -> NodeMeta {
    NodeMeta {
        name: format!("n{i}"),
        source_function: format!("f{i}"),
    }
}

/// Random connected DAG with node 0 as the unique start.
fn random_edges(n: usize, seed: u64) -> Vec<Edge> {
    let mut rng = Pcg32::seed(seed);
    let mut edges = Vec::new();
    for i in 1..n {
        let parent = rng.next_index(i);
        edges.push(Edge {
            from: NodeId(parent as u32),
            to: NodeId(i as u32),
            conditional: rng.chance(0.25),
        });
        if i >= 2 && rng.chance(0.4) {
            let extra = rng.next_index(i);
            if extra != parent {
                edges.push(Edge {
                    from: NodeId(extra as u32),
                    to: NodeId(i as u32),
                    conditional: false,
                });
            }
        }
    }
    edges
}

proptest! {
    /// Every randomly generated forward-edge graph validates, has node 0
    /// as its start, a topological order covering all nodes, and
    /// consistent in/out edge sets.
    #[test]
    fn random_forward_graphs_validate(n in 1usize..20, seed in any::<u64>()) {
        let edges = random_edges(n, seed);
        let dag = WorkflowDag::new("p", "0.1", (0..n).map(meta).collect(), edges).unwrap();
        prop_assert_eq!(dag.start(), NodeId(0));
        prop_assert_eq!(dag.topo_order().len(), n);
        // Topological order respects every edge.
        let pos = |x: NodeId| dag.topo_order().iter().position(|t| *t == x).unwrap();
        for e in dag.all_edges() {
            let e = dag.edge(e);
            prop_assert!(pos(e.from) < pos(e.to));
        }
        // in/out edge sets partition the edge list.
        let total_out: usize = dag.all_nodes().map(|v| dag.out_edges(v).len()).sum();
        let total_in: usize = dag.all_nodes().map(|v| dag.in_edges(v).len()).sum();
        prop_assert_eq!(total_out, dag.edge_count());
        prop_assert_eq!(total_in, dag.edge_count());
        // Sync nodes are exactly the in-degree > 1 nodes.
        for v in dag.all_nodes() {
            prop_assert_eq!(dag.is_sync_node(v), dag.in_edges(v).len() > 1);
        }
    }

    /// Adding a back edge to any valid DAG makes it invalid.
    #[test]
    fn back_edge_always_rejected(n in 2usize..12, seed in any::<u64>()) {
        let mut edges = random_edges(n, seed);
        let mut rng = Pcg32::seed(seed ^ 0xbac);
        let hi = 1 + rng.next_index(n - 1);
        let lo = rng.next_index(hi);
        // hi -> lo reverses a topological relation; combined with the
        // lo..hi chain this can only produce a cycle or a duplicate.
        edges.push(Edge {
            from: NodeId(hi as u32),
            to: NodeId(lo as u32),
            conditional: false,
        });
        // Ensure there is a path lo -> hi by adding the direct edge if
        // absent (may duplicate, which is also an error).
        edges.push(Edge {
            from: NodeId(lo as u32),
            to: NodeId(hi as u32),
            conditional: false,
        });
        prop_assert!(WorkflowDag::new("c", "0.1", (0..n).map(meta).collect(), edges).is_err());
    }

    /// Distribution samples are finite and non-negative for all the
    /// duration/size distributions used by profiles.
    #[test]
    fn dist_samples_non_negative(seed in any::<u64>(), median in 0.001f64..1e6, sigma in 0.0f64..1.0) {
        let mut rng = Pcg32::seed(seed);
        for spec in [
            DistSpec::Constant { value: median },
            DistSpec::Uniform { lo: 0.0, hi: median },
            DistSpec::Normal { mean: median, std_dev: median * sigma },
            DistSpec::LogNormal { median, sigma },
        ] {
            spec.validate().unwrap();
            for _ in 0..32 {
                let x = spec.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "{spec:?} -> {x}");
            }
        }
    }

    /// `scaled` multiplies means exactly.
    #[test]
    fn dist_scaling_is_linear(median in 0.01f64..1e4, factor in 0.01f64..100.0) {
        let spec = DistSpec::LogNormal { median, sigma: 0.3 };
        let scaled = spec.scaled(factor);
        prop_assert!((scaled.mean() - spec.mean() * factor).abs() / (spec.mean() * factor) < 1e-12);
    }

    /// Region filters: the permitted set is always a subset of the
    /// universe plus the home region, and home is always present.
    #[test]
    fn permitted_regions_invariants(n in 1usize..6, seed in any::<u64>()) {
        let cat = RegionCatalog::aws_default();
        let edges = random_edges(n, seed);
        let dag = WorkflowDag::new("p", "0.1", (0..n).map(meta).collect(), edges).unwrap();
        let mut rng = Pcg32::seed(seed ^ 0xf117);
        let universe: Vec<RegionId> = cat
            .all_ids()
            .into_iter()
            .filter(|_| rng.chance(0.6))
            .collect();
        let home = RegionId(rng.next_bounded(cat.len() as u32) as u16);
        let mut constraints = Constraints::unconstrained(n);
        if rng.chance(0.5) {
            constraints.workflow = RegionFilter::countries(["US"]);
        }
        for slot in constraints.per_node.iter_mut() {
            if rng.chance(0.3) {
                *slot = Some(RegionFilter::countries(["CA"]));
            }
        }
        let permitted = constraints.permitted_regions(&dag, &universe, &cat, home).unwrap();
        for set in &permitted {
            prop_assert!(set.contains(&home));
            for r in set {
                prop_assert!(universe.contains(r) || *r == home);
            }
            // Sorted and deduplicated.
            for w in set.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// Hourly plan sets: `regions_used` covers exactly the union of the
    /// per-hour plans' regions.
    #[test]
    fn hourly_plans_regions_used_is_union(seed in any::<u64>()) {
        let mut rng = Pcg32::seed(seed);
        let plans: Vec<DeploymentPlan> = (0..24)
            .map(|_| {
                DeploymentPlan::new(
                    (0..3).map(|_| RegionId(rng.next_bounded(5) as u16)).collect(),
                )
            })
            .collect();
        let hp = HourlyPlans::hourly(plans.clone(), 0.0, 1.0);
        let mut expected: Vec<RegionId> =
            plans.iter().flat_map(|p| p.regions_used()).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(hp.regions_used(), expected);
    }
}
