//! Cloud regions, providers, and the region catalog.
//!
//! Regions are referred to by compact [`RegionId`] indices everywhere in the
//! workspace; the [`RegionCatalog`] maps indices to rich [`RegionSpec`]
//! metadata (provider, location, grid zone). The default catalog contains
//! the public AWS North American regions studied in the paper plus a few
//! global regions used by examples and tests.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::ModelError;

/// A cloud service provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Amazon Web Services (the provider the paper evaluates on).
    Aws,
    /// Google Cloud Platform.
    Gcp,
    /// Microsoft Azure.
    Azure,
}

impl Provider {
    /// All providers, in catalog order.
    pub const ALL: [Provider; 3] = [Provider::Aws, Provider::Gcp, Provider::Azure];

    /// Parses a lowercase provider label (`aws`, `gcp`, `azure`).
    pub fn parse(label: &str) -> Result<Provider, ModelError> {
        match label {
            "aws" => Ok(Provider::Aws),
            "gcp" => Ok(Provider::Gcp),
            "azure" => Ok(Provider::Azure),
            other => Err(ModelError::UnknownProvider { name: other.into() }),
        }
    }

    /// This provider's bit in a [`ProviderSet`] mask.
    pub fn bit(self) -> u8 {
        match self {
            Provider::Aws => 1 << 0,
            Provider::Gcp => 1 << 1,
            Provider::Azure => 1 << 2,
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provider::Aws => write!(f, "aws"),
            Provider::Gcp => write!(f, "gcp"),
            Provider::Azure => write!(f, "azure"),
        }
    }
}

/// A compact, copyable set of providers (one bit per [`Provider`]).
///
/// Used to parameterize clouds, campaigns, and CLI runs: the default
/// [`ProviderSet::aws_only`] keeps every legacy code path byte-identical,
/// while `ProviderSet::parse("aws,gcp")` opens the cross-provider plan
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProviderSet(u8);

impl ProviderSet {
    /// The empty set.
    pub fn empty() -> Self {
        ProviderSet(0)
    }

    /// The default single-provider set: AWS only.
    pub fn aws_only() -> Self {
        ProviderSet(Provider::Aws.bit())
    }

    /// A set from an explicit provider list.
    pub fn of(providers: &[Provider]) -> Self {
        ProviderSet(providers.iter().fold(0, |m, p| m | p.bit()))
    }

    /// Parses a comma-separated list, e.g. `aws,gcp`.
    pub fn parse(spec: &str) -> Result<Self, ModelError> {
        let mut mask = 0u8;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            mask |= Provider::parse(part)?.bit();
        }
        if mask == 0 {
            return Err(ModelError::UnknownProvider { name: spec.into() });
        }
        Ok(ProviderSet(mask))
    }

    /// Whether the set contains `provider`.
    pub fn contains(self, provider: Provider) -> bool {
        self.0 & provider.bit() != 0
    }

    /// Whether this is exactly the AWS-only set.
    pub fn is_aws_only(self) -> bool {
        self == ProviderSet::aws_only()
    }

    /// Members in catalog order (AWS first).
    pub fn iter(self) -> impl Iterator<Item = Provider> {
        Provider::ALL.into_iter().filter(move |p| self.contains(*p))
    }

    /// Number of member providers.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bitmask (bit layout per [`Provider::bit`]).
    pub fn mask(self) -> u8 {
        self.0
    }
}

impl Default for ProviderSet {
    fn default() -> Self {
        ProviderSet::aws_only()
    }
}

impl fmt::Display for ProviderSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

/// A provider-qualified region name: the canonical cross-provider way to
/// refer to a region, rendered `provider:name` (e.g. `aws:us-east-1`,
/// `gcp:us-east1`). Bare names stay valid only while unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProviderRegion {
    /// The provider operating the region.
    pub provider: Provider,
    /// The provider-scoped region name.
    pub name: String,
}

impl fmt::Display for ProviderRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.provider, self.name)
    }
}

/// A compact index identifying a region within a [`RegionCatalog`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RegionId(pub u16);

impl RegionId {
    /// Returns the catalog index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Full metadata for one cloud region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Provider-scoped region name, e.g. `us-east-1`.
    pub name: String,
    /// The provider operating this region.
    pub provider: Provider,
    /// ISO country code the datacenter resides in; used for data-residency
    /// compliance constraints (GDPR/HIPAA/PIPEDA in §2.3).
    pub country: String,
    /// Electrical-grid zone identifier (Electricity-Maps-style), e.g.
    /// `US-MIDA-PJM` or `CA-QC`.
    pub grid_zone: String,
    /// Latitude in degrees, used for great-circle latency estimates.
    pub latitude: f64,
    /// Longitude in degrees.
    pub longitude: f64,
}

/// An ordered collection of regions addressable by [`RegionId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionCatalog {
    regions: Vec<RegionSpec>,
}

impl RegionCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the default catalog of AWS public regions used in the paper's
    /// evaluation plus additional global regions for examples.
    ///
    /// The first six entries are the North American regions of Fig. 2; the
    /// four regions used throughout §9 (`us-east-1`, `us-west-1`,
    /// `us-west-2`, `ca-central-1`) can be selected via
    /// [`RegionCatalog::evaluation_regions`].
    pub fn aws_default() -> Self {
        let mut cat = Self::new();
        let rows: [(&str, &str, &str, f64, f64); 10] = [
            ("us-east-1", "US", "US-MIDA-PJM", 38.95, -77.45),
            ("us-east-2", "US", "US-MIDA-PJM", 40.0, -83.0),
            ("us-west-1", "US", "US-CAL-CISO", 37.35, -121.95),
            ("us-west-2", "US", "US-NW-PACW", 45.85, -119.7),
            ("ca-central-1", "CA", "CA-QC", 45.5, -73.6),
            ("ca-west-1", "CA", "CA-AB", 51.05, -114.05),
            ("eu-west-1", "IE", "IE", 53.35, -6.25),
            ("eu-central-1", "DE", "DE", 50.1, 8.7),
            ("ap-southeast-2", "AU", "AU-NSW", -33.85, 151.2),
            ("sa-east-1", "BR", "BR-CS", -23.55, -46.65),
        ];
        for (name, country, grid, lat, lon) in rows {
            cat.push(RegionSpec {
                name: name.to_string(),
                provider: Provider::Aws,
                country: country.to_string(),
                grid_zone: grid.to_string(),
                latitude: lat,
                longitude: lon,
            });
        }
        cat
    }

    /// Builds a multi-cloud catalog: the AWS regions of
    /// [`RegionCatalog::aws_default`] plus a set of GCP regions. Regions of
    /// different providers on the same electrical grid (e.g. AWS
    /// `us-west-2` and GCP `us-west1`, both on the Pacific Northwest grid)
    /// automatically share carbon intensity — the multi-cloud flavour of
    /// §2.1's observation.
    pub fn multi_cloud() -> Self {
        let mut cat = Self::aws_default();
        let rows: [(&str, &str, &str, f64, f64); 5] = [
            ("us-central1", "US", "US-MIDW-MISO", 41.3, -95.9),
            ("us-west1", "US", "US-NW-PACW", 45.6, -121.2),
            ("northamerica-northeast1", "CA", "CA-QC", 45.5, -73.6),
            ("europe-west1", "BE", "BE", 50.5, 3.8),
            ("europe-north1", "FI", "FI", 60.6, 27.1),
        ];
        for (name, country, grid, lat, lon) in rows {
            cat.push(RegionSpec {
                name: name.to_string(),
                provider: Provider::Gcp,
                country: country.to_string(),
                grid_zone: grid.to_string(),
                latitude: lat,
                longitude: lon,
            });
        }
        cat
    }

    /// Returns the ids of the four regions used in the paper's evaluation
    /// (§9.1): `us-east-1`, `us-west-1`, `us-west-2`, `ca-central-1`.
    ///
    /// # Panics
    ///
    /// Panics if the catalog does not contain all four regions; use on
    /// [`RegionCatalog::aws_default`].
    pub fn evaluation_regions(&self) -> Vec<RegionId> {
        ["us-east-1", "us-west-1", "us-west-2", "ca-central-1"]
            .iter()
            .map(|n| self.id_of(n).expect("evaluation region present"))
            .collect()
    }

    /// Appends a region and returns its id.
    pub fn push(&mut self, spec: RegionSpec) -> RegionId {
        let id = RegionId(self.regions.len() as u16);
        self.regions.push(spec);
        id
    }

    /// Number of regions in the catalog.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Returns the spec for a region id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this catalog.
    pub fn spec(&self, id: RegionId) -> &RegionSpec {
        &self.regions[id.index()]
    }

    /// Returns the spec for a region id, or `None` when out of range.
    pub fn get(&self, id: RegionId) -> Option<&RegionSpec> {
        self.regions.get(id.index())
    }

    /// Returns the human-readable name of a region id.
    pub fn name(&self, id: RegionId) -> &str {
        &self.spec(id).name
    }

    /// Resolves a bare region name to its id.
    ///
    /// Returns `None` both when the name is unknown and when it matches
    /// regions under more than one provider — a bare name must never
    /// silently alias one provider's region to another's (use
    /// [`RegionCatalog::resolve`] with a `provider:name` qualifier, or
    /// [`RegionCatalog::id_of_qualified`]).
    pub fn id_of(&self, name: &str) -> Option<RegionId> {
        let mut found = None;
        for (i, r) in self.regions.iter().enumerate() {
            if r.name == name {
                if found.is_some() {
                    return None; // ambiguous across providers
                }
                found = Some(RegionId(i as u16));
            }
        }
        found
    }

    /// Resolves a name scoped to one provider.
    pub fn id_of_qualified(&self, provider: Provider, name: &str) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|r| r.provider == provider && r.name == name)
            .map(|i| RegionId(i as u16))
    }

    /// Resolves a region name, returning a [`ModelError`] when unknown.
    ///
    /// Accepts both bare names (`us-east-1`) and provider-qualified names
    /// (`aws:us-east-1`). A bare name that matches regions under multiple
    /// providers returns [`ModelError::AmbiguousRegion`] instead of
    /// silently picking one.
    pub fn resolve(&self, name: &str) -> Result<RegionId, ModelError> {
        if let Some((prefix, bare)) = name.split_once(':') {
            let provider = Provider::parse(prefix)?;
            return self
                .id_of_qualified(provider, bare)
                .ok_or_else(|| ModelError::UnknownRegion {
                    name: name.to_string(),
                });
        }
        let matches: Vec<Provider> = self
            .regions
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.provider)
            .collect();
        match matches.len() {
            0 => Err(ModelError::UnknownRegion {
                name: name.to_string(),
            }),
            1 => Ok(self
                .id_of_qualified(matches[0], name)
                .expect("just matched")),
            _ => Err(ModelError::AmbiguousRegion {
                name: name.to_string(),
                providers: matches,
            }),
        }
    }

    /// The provider-qualified identity of a region id.
    pub fn qualified(&self, id: RegionId) -> ProviderRegion {
        let spec = self.spec(id);
        ProviderRegion {
            provider: spec.provider,
            name: spec.name.clone(),
        }
    }

    /// The set of providers operating regions in `ids`.
    pub fn providers_of(&self, ids: &[RegionId]) -> ProviderSet {
        ProviderSet(
            ids.iter()
                .fold(0u8, |m, id| m | self.spec(*id).provider.bit()),
        )
    }

    /// Cache/stream discriminator bits for the non-AWS providers among
    /// `ids`: 0 for any AWS-only set, so legacy AWS-shaped evaluation
    /// streams and cache keys stay bit-identical (the solver's
    /// fingerprint-0 reservation).
    pub fn provider_bits(&self, ids: &[RegionId]) -> u64 {
        (self.providers_of(ids).mask() & !Provider::Aws.bit()) as u64
    }

    /// Iterates over `(RegionId, &RegionSpec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &RegionSpec)> {
        self.regions
            .iter()
            .enumerate()
            .map(|(i, s)| (RegionId(i as u16), s))
    }

    /// Returns every region id in the catalog.
    pub fn all_ids(&self) -> Vec<RegionId> {
        (0..self.regions.len())
            .map(|i| RegionId(i as u16))
            .collect()
    }

    /// Great-circle distance in kilometres between two regions.
    pub fn distance_km(&self, a: RegionId, b: RegionId) -> f64 {
        let sa = self.spec(a);
        let sb = self.spec(b);
        haversine_km(sa.latitude, sa.longitude, sb.latitude, sb.longitude)
    }
}

/// Haversine great-circle distance in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    const R_EARTH_KM: f64 = 6371.0;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    2.0 * R_EARTH_KM * a.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_contains_paper_regions() {
        let cat = RegionCatalog::aws_default();
        for name in [
            "us-east-1",
            "us-east-2",
            "us-west-1",
            "us-west-2",
            "ca-central-1",
        ] {
            assert!(cat.id_of(name).is_some(), "missing {name}");
        }
        assert_eq!(cat.evaluation_regions().len(), 4);
    }

    #[test]
    fn resolve_unknown_region_errors() {
        let cat = RegionCatalog::aws_default();
        assert!(matches!(
            cat.resolve("mars-north-1"),
            Err(ModelError::UnknownRegion { .. })
        ));
    }

    #[test]
    fn ids_round_trip() {
        let cat = RegionCatalog::aws_default();
        for (id, spec) in cat.iter() {
            assert_eq!(cat.id_of(&spec.name), Some(id));
            assert_eq!(cat.name(id), spec.name);
        }
    }

    #[test]
    fn haversine_known_distance() {
        // Virginia (us-east-1) to California (us-west-1) is roughly 3,900 km.
        let cat = RegionCatalog::aws_default();
        let d = cat.distance_km(
            cat.id_of("us-east-1").unwrap(),
            cat.id_of("us-west-1").unwrap(),
        );
        assert!((3500.0..4300.0).contains(&d), "distance {d}");
    }

    #[test]
    fn haversine_zero_distance() {
        let cat = RegionCatalog::aws_default();
        let id = cat.id_of("us-east-1").unwrap();
        assert!(cat.distance_km(id, id) < 1e-9);
    }

    /// A catalog where two providers operate a region with the same bare
    /// name — the aliasing hazard provider-qualified resolution exists for.
    fn colliding_catalog() -> RegionCatalog {
        let mut cat = RegionCatalog::new();
        for provider in [Provider::Aws, Provider::Gcp] {
            cat.push(RegionSpec {
                name: "dual-1".to_string(),
                provider,
                country: "US".to_string(),
                grid_zone: "US-MIDA-PJM".to_string(),
                latitude: 39.0,
                longitude: -77.0,
            });
        }
        cat
    }

    #[test]
    fn bare_name_collision_never_aliases() {
        let cat = colliding_catalog();
        // Bare lookups refuse to guess.
        assert_eq!(cat.id_of("dual-1"), None);
        match cat.resolve("dual-1") {
            Err(ModelError::AmbiguousRegion { name, providers }) => {
                assert_eq!(name, "dual-1");
                assert_eq!(providers, vec![Provider::Aws, Provider::Gcp]);
            }
            other => panic!("expected AmbiguousRegion, got {other:?}"),
        }
        // Qualified lookups hit distinct ids.
        let aws = cat.resolve("aws:dual-1").unwrap();
        let gcp = cat.resolve("gcp:dual-1").unwrap();
        assert_ne!(aws, gcp);
        assert_eq!(cat.qualified(aws).to_string(), "aws:dual-1");
        assert_eq!(cat.qualified(gcp).to_string(), "gcp:dual-1");
        assert!(matches!(
            cat.resolve("azure:dual-1"),
            Err(ModelError::UnknownRegion { .. })
        ));
        assert!(matches!(
            cat.resolve("nimbus:dual-1"),
            Err(ModelError::UnknownProvider { .. })
        ));
    }

    #[test]
    fn qualified_resolution_on_unambiguous_catalogs_is_transparent() {
        let cat = RegionCatalog::multi_cloud();
        // Bare names keep resolving (every name is provider-unique here).
        let bare = cat.resolve("us-east-1").unwrap();
        let qualified = cat.resolve("aws:us-east-1").unwrap();
        assert_eq!(bare, qualified);
        assert_eq!(
            cat.resolve("gcp:us-west1").unwrap(),
            cat.id_of("us-west1").unwrap()
        );
        // A name under the wrong provider is unknown, not aliased.
        assert!(cat.resolve("gcp:us-east-1").is_err());
    }

    #[test]
    fn provider_sets_parse_and_mask() {
        assert_eq!(ProviderSet::parse("aws").unwrap(), ProviderSet::aws_only());
        let both = ProviderSet::parse("aws,gcp").unwrap();
        assert!(both.contains(Provider::Aws) && both.contains(Provider::Gcp));
        assert!(!both.is_aws_only());
        assert_eq!(both.len(), 2);
        assert_eq!(both.to_string(), "aws,gcp");
        assert_eq!(ProviderSet::parse("gcp, aws").unwrap(), both);
        assert!(ProviderSet::parse("aws,ibm").is_err());
        assert!(ProviderSet::parse("").is_err());
        assert_eq!(ProviderSet::default(), ProviderSet::aws_only());
    }

    #[test]
    fn provider_bits_reserve_zero_for_aws() {
        let cat = RegionCatalog::multi_cloud();
        let aws_only = cat.evaluation_regions();
        assert_eq!(cat.provider_bits(&aws_only), 0);
        let mixed: Vec<RegionId> = cat.all_ids();
        assert_ne!(cat.provider_bits(&mixed), 0);
        assert_eq!(
            cat.provider_bits(&mixed),
            (Provider::Gcp.bit()) as u64,
            "only non-AWS providers contribute bits"
        );
    }

    #[test]
    fn compliance_countries_present() {
        let cat = RegionCatalog::aws_default();
        let ca = cat.id_of("ca-central-1").unwrap();
        assert_eq!(cat.spec(ca).country, "CA");
        let us = cat.id_of("us-east-1").unwrap();
        assert_eq!(cat.spec(us).country, "US");
    }
}
