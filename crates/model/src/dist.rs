//! Distribution specifications shared by the workload profiles and models.
//!
//! The paper's Metrics Manager captures execution times and transmission
//! latencies as *distributions* rather than averages (§7.1). [`DistSpec`]
//! is the serializable description of such a distribution; sampling and
//! summary statistics are provided here so every crate agrees on the
//! semantics.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::rng::Pcg32;

/// A serializable distribution specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistSpec {
    /// A degenerate distribution always returning `value`.
    Constant {
        /// The constant value.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Normal with the given mean and standard deviation, truncated at zero
    /// (negative samples are clamped to zero, appropriate for durations and
    /// sizes).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Log-normal parameterized by the *linear-space* median and a
    /// multiplicative spread `sigma` (log-space standard deviation).
    LogNormal {
        /// Median of the distribution in linear space.
        median: f64,
        /// Log-space standard deviation; 0.25 gives mild skew.
        sigma: f64,
    },
    /// An empirical distribution resampling the stored observations.
    Empirical {
        /// Observed samples; must be non-empty.
        samples: Vec<f64>,
    },
}

impl DistSpec {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), ModelError> {
        let bad = |reason: &str| {
            Err(ModelError::InvalidDistribution {
                reason: reason.to_string(),
            })
        };
        match self {
            DistSpec::Constant { value } => {
                if !value.is_finite() {
                    return bad("constant value must be finite");
                }
            }
            DistSpec::Uniform { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite()) || lo > hi {
                    return bad("uniform requires finite lo <= hi");
                }
            }
            DistSpec::Normal { mean, std_dev } => {
                if !(mean.is_finite() && std_dev.is_finite()) || *std_dev < 0.0 {
                    return bad("normal requires finite mean and std_dev >= 0");
                }
            }
            DistSpec::LogNormal { median, sigma } => {
                if !(median.is_finite() && sigma.is_finite()) || *median <= 0.0 || *sigma < 0.0 {
                    return bad("lognormal requires median > 0 and sigma >= 0");
                }
            }
            DistSpec::Empirical { samples } => {
                if samples.is_empty() {
                    return bad("empirical distribution requires samples");
                }
                if samples.iter().any(|s| !s.is_finite()) {
                    return bad("empirical samples must be finite");
                }
            }
        }
        Ok(())
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Pcg32) -> f64 {
        match self {
            DistSpec::Constant { value } => *value,
            DistSpec::Uniform { lo, hi } => rng.uniform(*lo, *hi),
            DistSpec::Normal { mean, std_dev } => rng.normal(*mean, *std_dev).max(0.0),
            DistSpec::LogNormal { median, sigma } => rng.lognormal(median.ln(), *sigma),
            DistSpec::Empirical { samples } => *rng
                .choose(samples)
                .expect("validated empirical distribution is non-empty"),
        }
    }

    /// Analytical (or empirical) mean of the distribution.
    ///
    /// For the zero-truncated normal the untruncated mean is returned; the
    /// profiles keep `std_dev` well below `mean`, making the truncation
    /// correction negligible.
    pub fn mean(&self) -> f64 {
        match self {
            DistSpec::Constant { value } => *value,
            DistSpec::Uniform { lo, hi } => 0.5 * (lo + hi),
            DistSpec::Normal { mean, .. } => mean.max(0.0),
            DistSpec::LogNormal { median, sigma } => median * (0.5 * sigma * sigma).exp(),
            DistSpec::Empirical { samples } => {
                samples.iter().sum::<f64>() / samples.len().max(1) as f64
            }
        }
    }

    /// Compiles the spec into a [`PreparedDist`] with per-draw-invariant
    /// work (currently the log-normal `median.ln()`) hoisted out. Sampling
    /// the prepared form consumes the same rng draws and performs the same
    /// floating-point operations as [`DistSpec::sample`], so the two are
    /// bit-identical on a shared stream.
    pub fn prepare(&self) -> PreparedDist<'_> {
        match self {
            DistSpec::Constant { value } => PreparedDist::Constant(*value),
            DistSpec::Uniform { lo, hi } => PreparedDist::Uniform { lo: *lo, hi: *hi },
            DistSpec::Normal { mean, std_dev } => PreparedDist::Normal {
                mean: *mean,
                std_dev: *std_dev,
            },
            DistSpec::LogNormal { median, sigma } => PreparedDist::LogNormal {
                mu: median.ln(),
                sigma: *sigma,
            },
            DistSpec::Empirical { samples } => PreparedDist::Empirical(samples),
        }
    }

    /// Scales the distribution multiplicatively (used for region performance
    /// factors and input-size scaling).
    pub fn scaled(&self, factor: f64) -> DistSpec {
        match self {
            DistSpec::Constant { value } => DistSpec::Constant {
                value: value * factor,
            },
            DistSpec::Uniform { lo, hi } => DistSpec::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            DistSpec::Normal { mean, std_dev } => DistSpec::Normal {
                mean: mean * factor,
                std_dev: std_dev * factor,
            },
            DistSpec::LogNormal { median, sigma } => DistSpec::LogNormal {
                median: median * factor,
                sigma: *sigma,
            },
            DistSpec::Empirical { samples } => DistSpec::Empirical {
                samples: samples.iter().map(|s| s * factor).collect(),
            },
        }
    }
}

/// A compiled distribution ready for repeated sampling on a hot path.
///
/// Borrowing form of [`DistSpec`] produced by [`DistSpec::prepare`]; the
/// log-normal log-space location is precomputed so the estimator does not
/// pay an `ln` per draw. Draw-for-draw and bit-for-bit equivalent to
/// sampling the originating spec.
#[derive(Debug, Clone, Copy)]
pub enum PreparedDist<'a> {
    /// Degenerate distribution; draws nothing.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Zero-truncated normal.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Log-normal with the *log-space* location precomputed.
    LogNormal {
        /// Log-space location (`median.ln()` of the source spec).
        mu: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Empirical resampling over borrowed observations.
    Empirical(&'a [f64]),
}

impl PreparedDist<'_> {
    /// Draws one sample; bit-identical to [`DistSpec::sample`] of the
    /// spec this was prepared from.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg32) -> f64 {
        match self {
            PreparedDist::Constant(value) => *value,
            PreparedDist::Uniform { lo, hi } => rng.uniform(*lo, *hi),
            PreparedDist::Normal { mean, std_dev } => rng.normal(*mean, *std_dev).max(0.0),
            PreparedDist::LogNormal { mu, sigma } => rng.lognormal(*mu, *sigma),
            PreparedDist::Empirical(samples) => *rng
                .choose(samples)
                .expect("validated empirical distribution is non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(spec: &DistSpec, n: usize, seed: u64) -> f64 {
        let mut rng = Pcg32::seed(seed);
        (0..n).map(|_| spec.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_samples_constant() {
        let d = DistSpec::Constant { value: 4.2 };
        let mut rng = Pcg32::seed(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 4.2);
        }
        assert_eq!(d.mean(), 4.2);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = DistSpec::Uniform { lo: 2.0, hi: 6.0 };
        let mut rng = Pcg32::seed(2);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((sample_mean(&d, 20_000, 3) - 4.0).abs() < 0.05);
    }

    #[test]
    fn normal_truncated_at_zero() {
        let d = DistSpec::Normal {
            mean: 0.1,
            std_dev: 1.0,
        };
        let mut rng = Pcg32::seed(4);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let d = DistSpec::LogNormal {
            median: 3.0,
            sigma: 0.4,
        };
        let analytic = d.mean();
        let empirical = sample_mean(&d, 100_000, 5);
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "analytic {analytic} empirical {empirical}"
        );
    }

    #[test]
    fn empirical_resamples_observations() {
        let d = DistSpec::Empirical {
            samples: vec![1.0, 2.0, 3.0],
        };
        let mut rng = Pcg32::seed(6);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x == 1.0 || x == 2.0 || x == 3.0);
        }
        assert!((d.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DistSpec::Uniform { lo: 3.0, hi: 1.0 }.validate().is_err());
        assert!(DistSpec::LogNormal {
            median: 0.0,
            sigma: 0.1
        }
        .validate()
        .is_err());
        assert!(DistSpec::Empirical { samples: vec![] }.validate().is_err());
        assert!(DistSpec::Normal {
            mean: 1.0,
            std_dev: -1.0
        }
        .validate()
        .is_err());
        assert!(DistSpec::Constant { value: f64::NAN }.validate().is_err());
    }

    #[test]
    fn prepared_dist_bit_identical_to_spec() {
        let specs = [
            DistSpec::Constant { value: 4.2 },
            DistSpec::Uniform { lo: 2.0, hi: 6.0 },
            DistSpec::Normal {
                mean: 0.1,
                std_dev: 1.0,
            },
            DistSpec::LogNormal {
                median: 3.0,
                sigma: 0.4,
            },
            DistSpec::Empirical {
                samples: vec![1.0, 2.5, 3.0, 7.5],
            },
        ];
        for (i, spec) in specs.iter().enumerate() {
            let prepared = spec.prepare();
            for seed in 0..4u64 {
                let mut a = Pcg32::seed(seed * 31 + i as u64);
                let mut b = a.clone();
                for _ in 0..500 {
                    let x = spec.sample(&mut a);
                    let y = prepared.sample(&mut b);
                    assert_eq!(x.to_bits(), y.to_bits(), "spec {spec:?}");
                }
                // Streams consumed the same number of draws.
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn scaled_scales_mean() {
        let d = DistSpec::LogNormal {
            median: 2.0,
            sigma: 0.3,
        };
        let s = d.scaled(2.5);
        assert!((s.mean() - 2.5 * d.mean()).abs() < 1e-9);
    }
}
