//! Error types for workflow-model operations.

use std::fmt;

use crate::region::Provider;

/// Errors produced when constructing or validating workflow models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The extracted workflow graph contains a cycle, which the DAG
    /// representation of §4 cannot express.
    CyclicWorkflow {
        /// A function name participating in the cycle.
        function: String,
    },
    /// The workflow has no start node (every node has a predecessor).
    NoStartNode,
    /// The workflow has more than one start node; Caribou only considers
    /// workflows with exactly one entry point (§4).
    MultipleStartNodes {
        /// Names of the offending entry nodes.
        nodes: Vec<String>,
    },
    /// A node is unreachable from the start node.
    UnreachableNode {
        /// Name of the unreachable node.
        node: String,
    },
    /// An edge refers to a node that was never registered.
    UnknownNode {
        /// The unknown node's name or index rendering.
        node: String,
    },
    /// A duplicate edge between the same pair of nodes was declared.
    DuplicateEdge {
        /// Source node name.
        from: String,
        /// Destination node name.
        to: String,
    },
    /// A function name was registered twice.
    DuplicateFunction {
        /// The duplicated name.
        name: String,
    },
    /// The workflow is empty.
    EmptyWorkflow,
    /// A constraint or manifest field failed validation.
    InvalidConstraint {
        /// Human-readable reason.
        reason: String,
    },
    /// A deployment plan does not cover every node or names an unknown
    /// region.
    InvalidPlan {
        /// Human-readable reason.
        reason: String,
    },
    /// A region name could not be resolved against the catalog.
    UnknownRegion {
        /// The unresolved region name.
        name: String,
    },
    /// A distribution specification has invalid parameters.
    InvalidDistribution {
        /// Human-readable reason.
        reason: String,
    },
    /// A bare region name matches regions under more than one provider;
    /// the caller must qualify it (`provider:name`).
    AmbiguousRegion {
        /// The ambiguous bare name.
        name: String,
        /// Providers that each have a region of this name.
        providers: Vec<Provider>,
    },
    /// A provider prefix or `--providers` entry was not recognized.
    UnknownProvider {
        /// The unrecognized provider label.
        name: String,
    },
    /// A cross-provider latency lookup found no entry in the
    /// inter-provider penalty table. Cross-provider delivery must never
    /// silently reuse the intra-provider matrix (or fall back to 0).
    MissingInterProviderLatency {
        /// Provider of the sending region.
        from: Provider,
        /// Provider of the receiving region.
        to: Provider,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CyclicWorkflow { function } => {
                write!(f, "workflow call graph is cyclic (via `{function}`)")
            }
            ModelError::NoStartNode => write!(f, "workflow has no start node"),
            ModelError::MultipleStartNodes { nodes } => {
                write!(f, "workflow has multiple start nodes: {nodes:?}")
            }
            ModelError::UnreachableNode { node } => {
                write!(f, "node `{node}` is unreachable from the start node")
            }
            ModelError::UnknownNode { node } => write!(f, "unknown node `{node}`"),
            ModelError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge `{from}` -> `{to}`")
            }
            ModelError::DuplicateFunction { name } => {
                write!(f, "function `{name}` registered twice")
            }
            ModelError::EmptyWorkflow => write!(f, "workflow has no functions"),
            ModelError::InvalidConstraint { reason } => {
                write!(f, "invalid constraint: {reason}")
            }
            ModelError::InvalidPlan { reason } => write!(f, "invalid deployment plan: {reason}"),
            ModelError::UnknownRegion { name } => write!(f, "unknown region `{name}`"),
            ModelError::InvalidDistribution { reason } => {
                write!(f, "invalid distribution: {reason}")
            }
            ModelError::AmbiguousRegion { name, providers } => {
                let names: Vec<String> = providers.iter().map(|p| p.to_string()).collect();
                write!(
                    f,
                    "region name `{name}` is ambiguous across providers ({}); \
                     qualify it as `provider:{name}`",
                    names.join(", ")
                )
            }
            ModelError::UnknownProvider { name } => write!(f, "unknown provider `{name}`"),
            ModelError::MissingInterProviderLatency { from, to } => {
                write!(f, "no inter-provider latency entry for `{from}` -> `{to}`")
            }
        }
    }
}

impl std::error::Error for ModelError {}
