//! Region constraints and QoS tolerances (§2.3 Compliance, §8).
//!
//! Developers can restrict where functions may run at two levels: per
//! function (via the builder API) and per workflow (via the deployment
//! manifest). Function-level configurations supersede workflow-level ones
//! (§8). If no regions are explicitly allowed, all regions are considered.

use serde::{Deserialize, Serialize};

use crate::dag::WorkflowDag;
use crate::error::ModelError;
use crate::region::{Provider, RegionCatalog, RegionId};

/// Which metric the solver should prioritize when ranking feasible
/// deployments (§5.1, §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize operational carbon (the paper's default focus).
    #[default]
    Carbon,
    /// Minimize monetary cost.
    Cost,
    /// Minimize end-to-end latency.
    Latency,
}

/// Relative tolerances versus the home-region deployment, enforced at
/// deployment-plan generation (§8, §9.4).
///
/// A tolerance of `0.05` permits the tail (95th-percentile) metric of a
/// candidate deployment to exceed the home-region tail metric by 5%.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Allowed relative increase of tail end-to-end latency.
    pub latency: f64,
    /// Allowed relative increase of tail cost per invocation.
    pub cost: f64,
    /// Allowed relative increase of tail carbon per invocation. The default
    /// is unbounded because offloading exists to *reduce* carbon; set it to
    /// bound worst-case regressions.
    #[serde(with = "serde_unbounded")]
    pub carbon: f64,
}

/// Serde adapter mapping `f64::INFINITY` to JSON `null` and back, since
/// JSON has no literal for infinities.
mod serde_unbounded {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            latency: 0.05,
            cost: 0.10,
            carbon: f64::INFINITY,
        }
    }
}

impl Tolerances {
    /// Validates that tolerances are non-negative.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.latency < 0.0 || self.cost < 0.0 || self.carbon < 0.0 {
            return Err(ModelError::InvalidConstraint {
                reason: "tolerances must be non-negative".to_string(),
            });
        }
        Ok(())
    }
}

/// A region filter: allow-list and/or deny-list over regions and providers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionFilter {
    /// If non-empty, only these regions are eligible.
    pub allowed_regions: Vec<RegionId>,
    /// These regions are never eligible (applied after the allow-list).
    pub disallowed_regions: Vec<RegionId>,
    /// If non-empty, only these providers are eligible.
    pub allowed_providers: Vec<Provider>,
    /// These providers are never eligible.
    pub disallowed_providers: Vec<Provider>,
    /// If non-empty, only regions in these ISO country codes are eligible
    /// (data-residency shorthand, e.g. `["US"]` for HIPAA-style residency).
    pub allowed_countries: Vec<String>,
}

impl RegionFilter {
    /// A filter that permits everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// A filter restricted to the given regions.
    pub fn only(regions: impl IntoIterator<Item = RegionId>) -> Self {
        RegionFilter {
            allowed_regions: regions.into_iter().collect(),
            ..Self::default()
        }
    }

    /// A filter restricted to the given countries.
    pub fn countries<S: Into<String>>(codes: impl IntoIterator<Item = S>) -> Self {
        RegionFilter {
            allowed_countries: codes.into_iter().map(Into::into).collect(),
            ..Self::default()
        }
    }

    /// Whether a region passes this filter.
    pub fn permits(&self, region: RegionId, catalog: &RegionCatalog) -> bool {
        let spec = match catalog.get(region) {
            Some(s) => s,
            None => return false,
        };
        if !self.allowed_regions.is_empty() && !self.allowed_regions.contains(&region) {
            return false;
        }
        if self.disallowed_regions.contains(&region) {
            return false;
        }
        if !self.allowed_providers.is_empty() && !self.allowed_providers.contains(&spec.provider) {
            return false;
        }
        if self.disallowed_providers.contains(&spec.provider) {
            return false;
        }
        if !self.allowed_countries.is_empty() && !self.allowed_countries.contains(&spec.country) {
            return false;
        }
        true
    }

    /// Whether the filter imposes any restriction at all.
    pub fn is_unrestricted(&self) -> bool {
        self == &Self::default()
    }
}

/// Full constraint set for one workflow.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Workflow-level region filter (from the deployment manifest).
    pub workflow: RegionFilter,
    /// Per-node region filters (from the builder API); indexed by node.
    /// Function-level filters supersede workflow-level ones (§8).
    pub per_node: Vec<Option<RegionFilter>>,
    /// QoS tolerances versus the home-region deployment.
    pub tolerances: Tolerances,
    /// Optimization priority.
    pub objective: Objective,
}

impl Constraints {
    /// Creates an unconstrained set for a workflow with `node_count` nodes.
    pub fn unconstrained(node_count: usize) -> Self {
        Constraints {
            per_node: vec![None; node_count],
            ..Self::default()
        }
    }

    /// Computes the permitted region set per node over a candidate region
    /// universe, applying the supersession rule of §8: a node with its own
    /// filter uses *only* that filter; otherwise the workflow filter
    /// applies.
    ///
    /// The home region is always permitted for every node so a feasible
    /// fallback deployment exists.
    pub fn permitted_regions(
        &self,
        dag: &WorkflowDag,
        universe: &[RegionId],
        catalog: &RegionCatalog,
        home: RegionId,
    ) -> Result<Vec<Vec<RegionId>>, ModelError> {
        if self.per_node.len() != dag.node_count() {
            return Err(ModelError::InvalidConstraint {
                reason: format!(
                    "per-node constraints cover {} nodes, workflow has {}",
                    self.per_node.len(),
                    dag.node_count()
                ),
            });
        }
        self.tolerances.validate()?;
        let mut out = Vec::with_capacity(dag.node_count());
        for node in dag.all_nodes() {
            let filter = self.per_node[node.index()]
                .as_ref()
                .unwrap_or(&self.workflow);
            let mut set: Vec<RegionId> = universe
                .iter()
                .copied()
                .filter(|r| filter.permits(*r, catalog))
                .collect();
            if !set.contains(&home) {
                set.push(home);
            }
            set.sort_unstable();
            out.push(set);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Edge, NodeId, NodeMeta};

    fn catalog() -> RegionCatalog {
        RegionCatalog::aws_default()
    }

    fn chain3() -> WorkflowDag {
        let meta = |n: &str| NodeMeta {
            name: n.into(),
            source_function: n.into(),
        };
        WorkflowDag::new(
            "c",
            "0.1",
            vec![meta("a"), meta("b"), meta("c")],
            vec![
                Edge {
                    from: NodeId(0),
                    to: NodeId(1),
                    conditional: false,
                },
                Edge {
                    from: NodeId(1),
                    to: NodeId(2),
                    conditional: false,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn unrestricted_filter_permits_all() {
        let cat = catalog();
        let f = RegionFilter::any();
        assert!(f.is_unrestricted());
        for (id, _) in cat.iter() {
            assert!(f.permits(id, &cat));
        }
    }

    #[test]
    fn allow_list_restricts() {
        let cat = catalog();
        let use1 = cat.id_of("us-east-1").unwrap();
        let caw = cat.id_of("ca-central-1").unwrap();
        let f = RegionFilter::only([use1]);
        assert!(f.permits(use1, &cat));
        assert!(!f.permits(caw, &cat));
    }

    #[test]
    fn country_filter_data_residency() {
        let cat = catalog();
        let f = RegionFilter::countries(["US"]);
        assert!(f.permits(cat.id_of("us-west-1").unwrap(), &cat));
        assert!(!f.permits(cat.id_of("ca-central-1").unwrap(), &cat));
        assert!(!f.permits(cat.id_of("eu-west-1").unwrap(), &cat));
    }

    #[test]
    fn deny_list_applies_after_allow() {
        let cat = catalog();
        let use1 = cat.id_of("us-east-1").unwrap();
        let usw1 = cat.id_of("us-west-1").unwrap();
        let f = RegionFilter {
            allowed_regions: vec![use1, usw1],
            disallowed_regions: vec![usw1],
            ..RegionFilter::default()
        };
        assert!(f.permits(use1, &cat));
        assert!(!f.permits(usw1, &cat));
    }

    #[test]
    fn provider_filter() {
        let cat = catalog();
        let f = RegionFilter {
            disallowed_providers: vec![Provider::Aws],
            ..RegionFilter::default()
        };
        assert!(!f.permits(cat.id_of("us-east-1").unwrap(), &cat));
    }

    #[test]
    fn node_filter_supersedes_workflow_filter() {
        let cat = catalog();
        let dag = chain3();
        let use1 = cat.id_of("us-east-1").unwrap();
        let caw = cat.id_of("ca-central-1").unwrap();
        let universe = cat.evaluation_regions();
        let mut c = Constraints::unconstrained(3);
        // Workflow restricted to the US...
        c.workflow = RegionFilter::countries(["US"]);
        // ...but node 2 explicitly allows Canada only.
        c.per_node[2] = Some(RegionFilter::only([caw]));
        let permitted = c.permitted_regions(&dag, &universe, &cat, use1).unwrap();
        assert!(!permitted[0].contains(&caw));
        assert!(permitted[0].contains(&use1));
        // Node 2 gets Canada plus the always-permitted home region.
        assert!(permitted[2].contains(&caw));
        assert!(permitted[2].contains(&use1));
        assert_eq!(permitted[2].len(), 2);
    }

    #[test]
    fn home_region_always_permitted() {
        let cat = catalog();
        let dag = chain3();
        let use1 = cat.id_of("us-east-1").unwrap();
        let caw = cat.id_of("ca-central-1").unwrap();
        let mut c = Constraints::unconstrained(3);
        c.workflow = RegionFilter::only([caw]);
        let permitted = c
            .permitted_regions(&dag, &cat.evaluation_regions(), &cat, use1)
            .unwrap();
        for set in &permitted {
            assert!(set.contains(&use1));
        }
    }

    #[test]
    fn mismatched_constraint_length_errors() {
        let cat = catalog();
        let dag = chain3();
        let use1 = cat.id_of("us-east-1").unwrap();
        let c = Constraints::unconstrained(2);
        assert!(c
            .permitted_regions(&dag, &cat.evaluation_regions(), &cat, use1)
            .is_err());
    }

    #[test]
    fn negative_tolerance_rejected() {
        let t = Tolerances {
            latency: -0.1,
            ..Tolerances::default()
        };
        assert!(t.validate().is_err());
    }
}
