//! Interned, cheaply cloneable strings for the data-plane hot paths.
//!
//! The execution engine stamps every invocation log with its workflow
//! name and builds topic keys from it. With a plain `String` those stamps
//! cost one heap allocation per invocation; at loadgen rates that is the
//! single largest remaining allocation after buffer pooling. [`IStr`] is
//! an immutable reference-counted string: cloning it bumps a counter
//! instead of copying bytes, so a name allocated once at deployment time
//! is free to stamp onto millions of logs.
//!
//! [`StrInterner`] deduplicates on top of that: fleets registering many
//! workflows (or re-registering the same one) get one shared allocation
//! per distinct name.
//!
//! `IStr` serializes as a plain string (hand-written impls, not serde's
//! `rc` feature), so swapping a `String` field for `IStr` changes no
//! serialized byte.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// An immutable, reference-counted string. `Clone` is a refcount bump.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IStr(Arc<str>);

impl IStr {
    /// The string contents.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr(Arc::from(s))
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr(Arc::from(s))
    }
}

impl From<&IStr> for String {
    fn from(s: &IStr) -> Self {
        s.as_str().to_string()
    }
}

impl From<IStr> for String {
    fn from(s: IStr) -> Self {
        s.as_str().to_string()
    }
}

impl Default for IStr {
    fn default() -> Self {
        IStr::from("")
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == other.as_str()
    }
}

impl Serialize for IStr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_str().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for IStr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        String::deserialize(deserializer).map(IStr::from)
    }
}

/// Deduplicating [`IStr`] factory: interning the same text twice returns
/// two handles to one allocation.
#[derive(Debug, Clone, Default)]
pub struct StrInterner {
    set: HashSet<IStr>,
}

impl StrInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the interned handle for `s`, allocating only on first
    /// sight of the text.
    pub fn intern(&mut self, s: &str) -> IStr {
        if let Some(found) = self.set.get(s) {
            return found.clone();
        }
        let v = IStr::from(s);
        self.set.insert(v.clone());
        v
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = IStr::from("workflow");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(a, "workflow");
        assert_eq!(a.as_str(), "workflow");
    }

    #[test]
    fn interner_deduplicates() {
        let mut i = StrInterner::new();
        let a = i.intern("t2s");
        let b = i.intern("t2s");
        let c = i.intern("dna");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(!Arc::ptr_eq(&a.0, &c.0));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn serializes_as_a_plain_string() {
        let v = IStr::from("wf-1");
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "\"wf-1\"");
        let back: IStr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        // Byte-identical to what a String field would have produced.
        assert_eq!(json, serde_json::to_string("wf-1").unwrap());
    }

    #[test]
    fn orders_and_hashes_like_str() {
        use std::collections::HashMap;
        let mut m: HashMap<IStr, u32> = HashMap::new();
        m.insert(IStr::from("a"), 1);
        // Borrow<str> lets lookups skip the allocation.
        assert_eq!(m.get("a"), Some(&1));
        let (a, b) = (IStr::from("a"), IStr::from("b"));
        assert!(a < b);
    }
}
