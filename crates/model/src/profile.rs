//! Workload resource profiles.
//!
//! The framework never inspects application logic; it learns each stage's
//! execution-time distribution, memory configuration, CPU utilization, and
//! per-edge payload sizes (§7.1). A [`WorkflowProfile`] is the serializable
//! form of that knowledge. For the benchmark replicas in
//! `caribou-workloads` the profiles are calibrated to the paper's
//! workloads; for user workflows they are estimated from invocation logs by
//! the Metrics Manager.

use serde::{Deserialize, Serialize};

use crate::dag::WorkflowDag;
use crate::dist::DistSpec;
use crate::error::ModelError;

/// Resource profile for one workflow stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Configured memory size in MB; determines the vCPU allocation
    /// (`mem / 1769`, §7.1) and the memory energy term.
    pub memory_mb: u32,
    /// Execution-time distribution in seconds on reference (home-region)
    /// hardware.
    pub exec_time: DistSpec,
    /// Average CPU utilization in `[0, 1]` during execution, measured via
    /// Lambda-Insights-style `cpu_total_time`; drives the linear
    /// utilization-based power model (Eq. 7.3).
    pub cpu_utilization: f64,
    /// Bytes read from / written to external storage and services that stay
    /// at the home region (§9.1 Fair Experiments: "All benchmarks access
    /// external storage and services at or close to their home region").
    /// When the node is offloaded these bytes traverse the inter-region
    /// network.
    pub external_data_bytes: f64,
}

impl NodeProfile {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.exec_time.validate()?;
        if self.memory_mb == 0 {
            return Err(ModelError::InvalidConstraint {
                reason: "memory_mb must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.cpu_utilization) {
            return Err(ModelError::InvalidConstraint {
                reason: "cpu_utilization must be in [0, 1]".into(),
            });
        }
        if self.external_data_bytes < 0.0 || !self.external_data_bytes.is_finite() {
            return Err(ModelError::InvalidConstraint {
                reason: "external_data_bytes must be non-negative".into(),
            });
        }
        Ok(())
    }
}

/// Resource profile for one DAG edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeProfile {
    /// Intermediate-data payload (bytes) passed along the edge via the
    /// distributed key-value store.
    pub payload_bytes: DistSpec,
    /// Probability the edge is taken. `1.0` for unconditional edges;
    /// learned from logs for conditional edges (§7.1 Monte Carlo sampling).
    pub probability: f64,
}

impl EdgeProfile {
    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.payload_bytes.validate()?;
        if !(0.0..=1.0).contains(&self.probability) {
            return Err(ModelError::InvalidConstraint {
                reason: "edge probability must be in [0, 1]".into(),
            });
        }
        Ok(())
    }
}

/// Full resource profile of a workflow, parallel to a [`WorkflowDag`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowProfile {
    /// Per-node profiles, indexed like the DAG's nodes.
    pub nodes: Vec<NodeProfile>,
    /// Per-edge profiles, indexed like the DAG's edges.
    pub edges: Vec<EdgeProfile>,
    /// Client input payload (bytes) delivered to the start node. The client
    /// is assumed to sit at the home region (§9.1).
    pub input_bytes: DistSpec,
}

impl WorkflowProfile {
    /// Validates shape against a DAG and parameter sanity of every entry.
    pub fn validate(&self, dag: &WorkflowDag) -> Result<(), ModelError> {
        if self.nodes.len() != dag.node_count() {
            return Err(ModelError::InvalidConstraint {
                reason: format!(
                    "profile covers {} nodes, workflow has {}",
                    self.nodes.len(),
                    dag.node_count()
                ),
            });
        }
        if self.edges.len() != dag.edge_count() {
            return Err(ModelError::InvalidConstraint {
                reason: format!(
                    "profile covers {} edges, workflow has {}",
                    self.edges.len(),
                    dag.edge_count()
                ),
            });
        }
        for n in &self.nodes {
            n.validate()?;
        }
        for (i, e) in self.edges.iter().enumerate() {
            e.validate()?;
            if !dag.edge(crate::dag::EdgeId(i as u32)).conditional && e.probability != 1.0 {
                return Err(ModelError::InvalidConstraint {
                    reason: format!("unconditional edge e{i} must have probability 1.0"),
                });
            }
        }
        self.input_bytes.validate()?;
        Ok(())
    }

    /// Expected total execution seconds across all nodes weighted by their
    /// invocation probability; a rough workload-size figure used by the
    /// token-bucket controller.
    pub fn expected_total_exec_seconds(&self, dag: &WorkflowDag) -> f64 {
        let probs = self.node_invocation_probabilities(dag);
        self.nodes
            .iter()
            .zip(probs.iter())
            .map(|(n, p)| n.exec_time.mean() * p)
            .sum()
    }

    /// Approximate probability each node is invoked, propagating edge
    /// probabilities through the DAG (a node fires if any incoming edge
    /// fires; independence is assumed, matching the Monte Carlo sampler's
    /// edge model).
    pub fn node_invocation_probabilities(&self, dag: &WorkflowDag) -> Vec<f64> {
        let mut prob = vec![0.0f64; dag.node_count()];
        prob[dag.start().index()] = 1.0;
        for &n in dag.topo_order() {
            let p_node = prob[n.index()];
            for &eid in dag.out_edges(n) {
                let e = dag.edge(eid);
                let p_edge = p_node * self.edges[eid.index()].probability;
                // P(any) under independence: 1 - Π(1 - p).
                let cur = prob[e.to.index()];
                prob[e.to.index()] = 1.0 - (1.0 - cur) * (1.0 - p_edge);
            }
        }
        prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Edge, NodeId, NodeMeta, WorkflowDag};

    fn meta(n: &str) -> NodeMeta {
        NodeMeta {
            name: n.into(),
            source_function: n.into(),
        }
    }

    fn node_profile(exec: f64) -> NodeProfile {
        NodeProfile {
            memory_mb: 1769,
            exec_time: DistSpec::Constant { value: exec },
            cpu_utilization: 0.7,
            external_data_bytes: 0.0,
        }
    }

    fn edge_profile(p: f64) -> EdgeProfile {
        EdgeProfile {
            payload_bytes: DistSpec::Constant { value: 1024.0 },
            probability: p,
        }
    }

    fn cond_diamond() -> WorkflowDag {
        WorkflowDag::new(
            "d",
            "0.1",
            vec![meta("a"), meta("b"), meta("c"), meta("d")],
            vec![
                Edge {
                    from: NodeId(0),
                    to: NodeId(1),
                    conditional: true,
                },
                Edge {
                    from: NodeId(0),
                    to: NodeId(2),
                    conditional: true,
                },
                Edge {
                    from: NodeId(1),
                    to: NodeId(3),
                    conditional: false,
                },
                Edge {
                    from: NodeId(2),
                    to: NodeId(3),
                    conditional: false,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validate_accepts_well_formed() {
        let dag = cond_diamond();
        let p = WorkflowProfile {
            nodes: vec![node_profile(1.0); 4],
            edges: vec![
                edge_profile(0.5),
                edge_profile(0.5),
                edge_profile(1.0),
                edge_profile(1.0),
            ],
            input_bytes: DistSpec::Constant { value: 100.0 },
        };
        assert!(p.validate(&dag).is_ok());
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let dag = cond_diamond();
        let p = WorkflowProfile {
            nodes: vec![node_profile(1.0); 3],
            edges: vec![edge_profile(1.0); 4],
            input_bytes: DistSpec::Constant { value: 100.0 },
        };
        assert!(p.validate(&dag).is_err());
    }

    #[test]
    fn validate_rejects_subunit_probability_on_unconditional_edge() {
        let dag = cond_diamond();
        let p = WorkflowProfile {
            nodes: vec![node_profile(1.0); 4],
            edges: vec![
                edge_profile(0.5),
                edge_profile(0.5),
                edge_profile(0.9),
                edge_profile(1.0),
            ],
            input_bytes: DistSpec::Constant { value: 100.0 },
        };
        assert!(p.validate(&dag).is_err());
    }

    #[test]
    fn validate_rejects_bad_node_parameters() {
        let mut n = node_profile(1.0);
        n.cpu_utilization = 1.5;
        assert!(n.validate().is_err());
        let mut n = node_profile(1.0);
        n.memory_mb = 0;
        assert!(n.validate().is_err());
    }

    #[test]
    fn invocation_probabilities_propagate() {
        let dag = cond_diamond();
        let p = WorkflowProfile {
            nodes: vec![node_profile(1.0); 4],
            edges: vec![
                edge_profile(0.5),
                edge_profile(0.5),
                edge_profile(1.0),
                edge_profile(1.0),
            ],
            input_bytes: DistSpec::Constant { value: 100.0 },
        };
        let probs = p.node_invocation_probabilities(&dag);
        assert_eq!(probs[0], 1.0);
        assert!((probs[1] - 0.5).abs() < 1e-12);
        assert!((probs[2] - 0.5).abs() < 1e-12);
        // P(d) = 1 - (1 - 0.5)(1 - 0.5) = 0.75 under independence.
        assert!((probs[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn expected_exec_weights_by_probability() {
        let dag = cond_diamond();
        let p = WorkflowProfile {
            nodes: vec![
                node_profile(2.0),
                node_profile(4.0),
                node_profile(4.0),
                node_profile(8.0),
            ],
            edges: vec![
                edge_profile(0.5),
                edge_profile(0.5),
                edge_profile(1.0),
                edge_profile(1.0),
            ],
            input_bytes: DistSpec::Constant { value: 100.0 },
        };
        let expected = 2.0 + 0.5 * 4.0 + 0.5 * 4.0 + 0.75 * 8.0;
        assert!((p.expected_total_exec_seconds(&dag) - expected).abs() < 1e-9);
    }
}
