//! The deployment manifest: the paper's `config.yml` + `iam_policy.json`.
//!
//! Developers configure workflow-level objectives, tolerances, the home
//! region, and eligible regions/providers in the manifest (§8). The
//! manifest is serialized as JSON (the workspace's single text format) and
//! validated against the region catalog before the initial deployment.

use serde::{Deserialize, Serialize};

use crate::constraints::{Objective, RegionFilter, Tolerances};
use crate::error::ModelError;
use crate::region::{Provider, RegionCatalog, RegionId};

/// One IAM policy statement (deliberately minimal: the simulated IAM only
/// checks that a role exists per function deployment region, as in §6.1
/// step 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IamStatement {
    /// Action pattern, e.g. `sns:Publish`.
    pub action: String,
    /// Resource pattern, e.g. `arn:aws:sns:*:*:caribou-*`.
    pub resource: String,
}

/// The IAM policy attached to every per-region role of the workflow.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IamPolicy {
    /// Policy statements.
    pub statements: Vec<IamStatement>,
}

impl IamPolicy {
    /// The minimal policy Caribou functions need: pub/sub publish, KV
    /// read/write, and log emission.
    pub fn caribou_default() -> Self {
        let stmt = |action: &str, resource: &str| IamStatement {
            action: action.to_string(),
            resource: resource.to_string(),
        };
        IamPolicy {
            statements: vec![
                stmt("sns:Publish", "arn:aws:sns:*:*:caribou-*"),
                stmt("dynamodb:GetItem", "arn:aws:dynamodb:*:*:table/caribou-*"),
                stmt("dynamodb:PutItem", "arn:aws:dynamodb:*:*:table/caribou-*"),
                stmt(
                    "dynamodb:UpdateItem",
                    "arn:aws:dynamodb:*:*:table/caribou-*",
                ),
                stmt("logs:PutLogEvents", "*"),
            ],
        }
    }
}

/// The deployment manifest configured by the developer (§8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentManifest {
    /// Workflow name; must match the declared workflow.
    pub workflow_name: String,
    /// Workflow version.
    pub version: String,
    /// Home-region name: the initial deployment region, fallback, and
    /// baseline (§6.1).
    pub home_region: String,
    /// Workflow-level region/provider eligibility.
    #[serde(default)]
    pub regions_and_providers: ManifestRegions,
    /// QoS tolerances versus the home-region deployment.
    #[serde(default)]
    pub tolerances: Tolerances,
    /// Optimization priority.
    #[serde(default)]
    pub objective: Objective,
    /// IAM policy attached to every per-region role.
    #[serde(default)]
    pub iam_policy: IamPolicy,
}

/// Workflow-level eligible/prohibited regions and providers, by name.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ManifestRegions {
    /// Eligible region names; empty means "all regions considered" (§8).
    #[serde(default)]
    pub allowed_regions: Vec<String>,
    /// Prohibited region names.
    #[serde(default)]
    pub disallowed_regions: Vec<String>,
    /// Eligible providers; empty means all.
    #[serde(default)]
    pub allowed_providers: Vec<Provider>,
    /// Eligible country codes; empty means all.
    #[serde(default)]
    pub allowed_countries: Vec<String>,
}

impl DeploymentManifest {
    /// Creates a manifest with defaults for the given workflow and home
    /// region.
    pub fn new(
        workflow_name: impl Into<String>,
        version: impl Into<String>,
        home_region: impl Into<String>,
    ) -> Self {
        DeploymentManifest {
            workflow_name: workflow_name.into(),
            version: version.into(),
            home_region: home_region.into(),
            regions_and_providers: ManifestRegions::default(),
            tolerances: Tolerances::default(),
            objective: Objective::Carbon,
            iam_policy: IamPolicy::caribou_default(),
        }
    }

    /// Parses a manifest from JSON.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json).map_err(|e| ModelError::InvalidConstraint {
            reason: format!("manifest parse error: {e}"),
        })
    }

    /// Serializes the manifest to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization is infallible")
    }

    /// Resolves the home region against a catalog.
    pub fn resolve_home(&self, catalog: &RegionCatalog) -> Result<RegionId, ModelError> {
        catalog.resolve(&self.home_region)
    }

    /// Builds the workflow-level [`RegionFilter`] from the manifest,
    /// resolving region names against the catalog.
    pub fn region_filter(&self, catalog: &RegionCatalog) -> Result<RegionFilter, ModelError> {
        let resolve_all = |names: &[String]| -> Result<Vec<RegionId>, ModelError> {
            names.iter().map(|n| catalog.resolve(n)).collect()
        };
        Ok(RegionFilter {
            allowed_regions: resolve_all(&self.regions_and_providers.allowed_regions)?,
            disallowed_regions: resolve_all(&self.regions_and_providers.disallowed_regions)?,
            allowed_providers: self.regions_and_providers.allowed_providers.clone(),
            disallowed_providers: Vec::new(),
            allowed_countries: self.regions_and_providers.allowed_countries.clone(),
        })
    }

    /// Builds the workflow [`Constraints`] the manifest describes: the
    /// workflow-level region filter, tolerances, and objective, with no
    /// per-node overrides (those come from the builder API, which
    /// supersedes workflow-level settings, §8).
    pub fn to_constraints(
        &self,
        catalog: &RegionCatalog,
        node_count: usize,
    ) -> Result<crate::constraints::Constraints, ModelError> {
        self.tolerances.validate()?;
        Ok(crate::constraints::Constraints {
            workflow: self.region_filter(catalog)?,
            per_node: vec![None; node_count],
            tolerances: self.tolerances,
            objective: self.objective,
        })
    }

    /// Validates the manifest against a catalog.
    pub fn validate(&self, catalog: &RegionCatalog) -> Result<(), ModelError> {
        if self.workflow_name.is_empty() {
            return Err(ModelError::InvalidConstraint {
                reason: "workflow_name must not be empty".into(),
            });
        }
        self.resolve_home(catalog)?;
        self.region_filter(catalog)?;
        self.tolerances.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_round_trip() {
        let m = DeploymentManifest::new("text2speech", "0.1", "us-east-1");
        let json = m.to_json();
        let back = DeploymentManifest::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_validates_against_catalog() {
        let cat = RegionCatalog::aws_default();
        let mut m = DeploymentManifest::new("wf", "0.1", "us-east-1");
        assert!(m.validate(&cat).is_ok());
        m.home_region = "nowhere-1".into();
        assert!(m.validate(&cat).is_err());
    }

    #[test]
    fn manifest_region_filter_resolves_names() {
        let cat = RegionCatalog::aws_default();
        let mut m = DeploymentManifest::new("wf", "0.1", "us-east-1");
        m.regions_and_providers.allowed_regions = vec!["us-east-1".into(), "ca-central-1".into()];
        let f = m.region_filter(&cat).unwrap();
        assert!(f.permits(cat.id_of("us-east-1").unwrap(), &cat));
        assert!(!f.permits(cat.id_of("us-west-1").unwrap(), &cat));
    }

    #[test]
    fn manifest_unknown_allowed_region_rejected() {
        let cat = RegionCatalog::aws_default();
        let mut m = DeploymentManifest::new("wf", "0.1", "us-east-1");
        m.regions_and_providers.allowed_regions = vec!["moon-base-1".into()];
        assert!(m.validate(&cat).is_err());
    }

    #[test]
    fn manifest_parses_minimal_json() {
        let json = r#"{
            "workflow_name": "dna",
            "version": "0.1",
            "home_region": "us-east-1"
        }"#;
        let m = DeploymentManifest::from_json(json).unwrap();
        assert_eq!(m.workflow_name, "dna");
        assert!(m.regions_and_providers.allowed_regions.is_empty());
        assert!((m.tolerances.latency - 0.05).abs() < 1e-12);
    }

    #[test]
    fn manifest_to_constraints_carries_settings() {
        use crate::constraints::Objective;
        let cat = RegionCatalog::aws_default();
        let mut m = DeploymentManifest::new("wf", "0.1", "us-east-1");
        m.objective = Objective::Cost;
        m.tolerances.latency = 0.2;
        m.regions_and_providers.allowed_countries = vec!["US".into()];
        let c = m.to_constraints(&cat, 3).unwrap();
        assert_eq!(c.objective, Objective::Cost);
        assert!((c.tolerances.latency - 0.2).abs() < 1e-12);
        assert_eq!(c.per_node.len(), 3);
        assert!(!c.workflow.permits(cat.id_of("ca-central-1").unwrap(), &cat));
        assert!(c.workflow.permits(cat.id_of("us-west-2").unwrap(), &cat));
    }

    #[test]
    fn default_iam_policy_covers_framework_services() {
        let p = IamPolicy::caribou_default();
        let actions: Vec<&str> = p.statements.iter().map(|s| s.action.as_str()).collect();
        assert!(actions.contains(&"sns:Publish"));
        assert!(actions.iter().any(|a| a.starts_with("dynamodb:")));
    }
}
