//! The workflow DAG of §4: nodes, conditional edges, synchronization nodes.
//!
//! A workflow is a DAG `G = (N, E)` with exactly one start node. An edge
//! may be *conditional*: its invocation is decided at runtime by the
//! predecessor. A node with more than one incoming edge is a
//! *synchronization node*; executing it requires the atomic-annotation
//! protocol implemented in `caribou-exec`.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

use crate::error::ModelError;

/// Index of a node within a [`WorkflowDag`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an edge within a [`WorkflowDag`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the edge index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Metadata for one execution stage (DAG node).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Stage name; unique within the workflow.
    pub name: String,
    /// Name of the source-code function this stage belongs to. Several
    /// stages may share one source function (§4).
    pub source_function: String,
}

/// One directed execution dependency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Whether the edge is conditional (its invocation is decided by the
    /// predecessor at runtime).
    pub conditional: bool,
}

/// An immutable, validated workflow DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowDag {
    name: String,
    version: String,
    nodes: Vec<NodeMeta>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_edges: Vec<Vec<EdgeId>>,
    start: NodeId,
    topo_order: Vec<NodeId>,
}

impl WorkflowDag {
    /// Builds and validates a DAG from raw nodes and edges.
    ///
    /// Validation enforces the §4 structural requirements: non-empty, no
    /// duplicate names or edges, acyclic, exactly one start node, and every
    /// node reachable from it.
    pub fn new(
        name: impl Into<String>,
        version: impl Into<String>,
        nodes: Vec<NodeMeta>,
        edges: Vec<Edge>,
    ) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyWorkflow);
        }
        // Unique node names.
        for (i, n) in nodes.iter().enumerate() {
            if nodes[..i].iter().any(|m| m.name == n.name) {
                return Err(ModelError::DuplicateFunction {
                    name: n.name.clone(),
                });
            }
        }
        // Edge endpoints in range; no duplicates or self-loops.
        for (i, e) in edges.iter().enumerate() {
            if e.from.index() >= nodes.len() || e.to.index() >= nodes.len() {
                return Err(ModelError::UnknownNode {
                    node: format!("{} or {}", e.from, e.to),
                });
            }
            if e.from == e.to {
                return Err(ModelError::CyclicWorkflow {
                    function: nodes[e.from.index()].name.clone(),
                });
            }
            if edges[..i].iter().any(|p| p.from == e.from && p.to == e.to) {
                return Err(ModelError::DuplicateEdge {
                    from: nodes[e.from.index()].name.clone(),
                    to: nodes[e.to.index()].name.clone(),
                });
            }
        }

        let mut out_edges = vec![Vec::new(); nodes.len()];
        let mut in_edges = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.from.index()].push(EdgeId(i as u32));
            in_edges[e.to.index()].push(EdgeId(i as u32));
        }

        // Exactly one start node.
        let starts: Vec<usize> = (0..nodes.len())
            .filter(|i| in_edges[*i].is_empty())
            .collect();
        let start = match starts.as_slice() {
            [] => return Err(ModelError::NoStartNode),
            [s] => NodeId(*s as u32),
            many => {
                return Err(ModelError::MultipleStartNodes {
                    nodes: many.iter().map(|i| nodes[*i].name.clone()).collect(),
                })
            }
        };

        // Kahn topological sort; detects cycles.
        let mut indeg: Vec<usize> = in_edges.iter().map(Vec::len).collect();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        queue.push_back(start);
        let mut topo_order = Vec::with_capacity(nodes.len());
        while let Some(n) = queue.pop_front() {
            topo_order.push(n);
            for &eid in &out_edges[n.index()] {
                let to = edges[eid.index()].to;
                indeg[to.index()] -= 1;
                if indeg[to.index()] == 0 {
                    queue.push_back(to);
                }
            }
        }
        if topo_order.len() != nodes.len() {
            // Either a cycle or an unreachable component. Distinguish by
            // checking reachability from the start node ignoring direction
            // of leftover in-degrees.
            let visited: Vec<bool> = {
                let mut v = vec![false; nodes.len()];
                let mut stack = vec![start];
                while let Some(n) = stack.pop() {
                    if std::mem::replace(&mut v[n.index()], true) {
                        continue;
                    }
                    for &eid in &out_edges[n.index()] {
                        stack.push(edges[eid.index()].to);
                    }
                }
                v
            };
            if let Some(un) = visited.iter().position(|v| !v) {
                return Err(ModelError::UnreachableNode {
                    node: nodes[un].name.clone(),
                });
            }
            let in_cycle = (0..nodes.len())
                .find(|i| !topo_order.iter().any(|t| t.index() == *i))
                .unwrap_or(0);
            return Err(ModelError::CyclicWorkflow {
                function: nodes[in_cycle].name.clone(),
            });
        }

        Ok(WorkflowDag {
            name: name.into(),
            version: version.into(),
            nodes,
            edges,
            out_edges,
            in_edges,
            start,
            topo_order,
        })
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workflow version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Number of nodes `|N|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The unique start node.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// Metadata for a node.
    pub fn node(&self, id: NodeId) -> &NodeMeta {
        &self.nodes[id.index()]
    }

    /// The edge record for an edge id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Looks up a node by stage name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Looks up the edge id between two nodes.
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.out_edges[from.index()]
            .iter()
            .copied()
            .find(|e| self.edges[e.index()].to == to)
    }

    /// Outgoing edges of a node (`E_out(n)`).
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out_edges[n.index()]
    }

    /// Incoming edges of a node (`E_in(n)`).
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.in_edges[n.index()]
    }

    /// Whether a node is a synchronization node (`|E_in(n)| > 1`, §4).
    pub fn is_sync_node(&self, n: NodeId) -> bool {
        self.in_edges[n.index()].len() > 1
    }

    /// Whether the DAG contains any synchronization node.
    pub fn has_sync_nodes(&self) -> bool {
        self.all_nodes().any(|n| self.is_sync_node(n))
    }

    /// Whether the DAG contains any conditional edge.
    pub fn has_conditional_edges(&self) -> bool {
        self.edges.iter().any(|e| e.conditional)
    }

    /// Iterates over all node ids in insertion order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Iterates over all edge ids in insertion order.
    pub fn all_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(|i| EdgeId(i as u32))
    }

    /// Nodes in a topological order starting at the start node.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }

    /// Successor node ids of `n`.
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[n.index()]
            .iter()
            .map(move |e| self.edges[e.index()].to)
    }

    /// Predecessor node ids of `n`.
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges[n.index()]
            .iter()
            .map(move |e| self.edges[e.index()].from)
    }

    /// Terminal (sink) nodes of the DAG.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.all_nodes()
            .filter(|n| self.out_edges[n.index()].is_empty())
            .collect()
    }

    /// All synchronization nodes reachable from `n` (inclusive of direct
    /// successors), used by the conditional skip-propagation rule of §4.
    pub fn reachable_sync_nodes(&self, n: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![n];
        let mut result = Vec::new();
        while let Some(cur) = stack.pop() {
            if std::mem::replace(&mut visited[cur.index()], true) {
                continue;
            }
            if cur != n && self.is_sync_node(cur) {
                result.push(cur);
            }
            for s in self.successors(cur) {
                stack.push(s);
            }
        }
        result.sort_unstable();
        result
    }

    /// All nodes reachable from `n`, excluding `n` itself.
    pub fn descendants(&self, n: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.successors(n).collect();
        let mut result = Vec::new();
        while let Some(cur) = stack.pop() {
            if std::mem::replace(&mut visited[cur.index()], true) {
                continue;
            }
            result.push(cur);
            for s in self.successors(cur) {
                stack.push(s);
            }
        }
        result.sort_unstable();
        result
    }

    /// A complexity score used by the Deployment Manager to estimate the
    /// cost of a deployment solve (§5.2): `|N| · (1 + |E|/|N|)` rounded up.
    pub fn complexity(&self) -> usize {
        let n = self.nodes.len();
        let e = self.edges.len();
        n + e
    }

    /// Renders the DAG in Graphviz DOT format. Conditional edges are
    /// dashed; synchronization nodes are double-circled. Pipe through
    /// `dot -Tsvg` to visualize a workflow.
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}\" {{\n  rankdir=LR;\n", self.name);
        for n in self.all_nodes() {
            let meta = self.node(n);
            let shape = if self.is_sync_node(n) {
                "doublecircle"
            } else {
                "ellipse"
            };
            out.push_str(&format!(
                "  n{} [label=\"{}\", shape={shape}];\n",
                n.0, meta.name
            ));
        }
        for e in self.all_edges() {
            let e = self.edge(e);
            let style = if e.conditional { " [style=dashed]" } else { "" };
            out.push_str(&format!("  n{} -> n{}{style};\n", e.from.0, e.to.0));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &str) -> NodeMeta {
        NodeMeta {
            name: name.to_string(),
            source_function: name.to_string(),
        }
    }

    fn edge(from: u32, to: u32) -> Edge {
        Edge {
            from: NodeId(from),
            to: NodeId(to),
            conditional: false,
        }
    }

    /// A diamond: 0 -> {1, 2} -> 3 where 3 is a sync node.
    fn diamond() -> WorkflowDag {
        WorkflowDag::new(
            "diamond",
            "0.1",
            vec![meta("a"), meta("b"), meta("c"), meta("d")],
            vec![edge(0, 1), edge(0, 2), edge(1, 3), edge(2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn diamond_structure() {
        let d = diamond();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.start(), NodeId(0));
        assert!(d.is_sync_node(NodeId(3)));
        assert!(!d.is_sync_node(NodeId(1)));
        assert!(d.has_sync_nodes());
        assert!(!d.has_conditional_edges());
        assert_eq!(d.sinks(), vec![NodeId(3)]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let order = d.topo_order();
        let pos = |n: NodeId| order.iter().position(|x| *x == n).unwrap();
        for e in d.all_edges() {
            let e = d.edge(e);
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn cycle_detected() {
        let r = WorkflowDag::new(
            "cyc",
            "0.1",
            vec![meta("a"), meta("b"), meta("c")],
            vec![edge(0, 1), edge(1, 2), edge(2, 1)],
        );
        assert!(matches!(r, Err(ModelError::CyclicWorkflow { .. })));
    }

    #[test]
    fn self_loop_rejected() {
        let r = WorkflowDag::new(
            "s",
            "0.1",
            vec![meta("a"), meta("b")],
            vec![edge(0, 1), edge(1, 1)],
        );
        assert!(matches!(r, Err(ModelError::CyclicWorkflow { .. })));
    }

    #[test]
    fn multiple_starts_rejected() {
        let r = WorkflowDag::new(
            "m",
            "0.1",
            vec![meta("a"), meta("b"), meta("c")],
            vec![edge(0, 2), edge(1, 2)],
        );
        assert!(matches!(r, Err(ModelError::MultipleStartNodes { .. })));
    }

    #[test]
    fn no_start_rejected() {
        let r = WorkflowDag::new(
            "n",
            "0.1",
            vec![meta("a"), meta("b")],
            vec![edge(0, 1), edge(1, 0)],
        );
        assert!(matches!(
            r,
            Err(ModelError::NoStartNode) | Err(ModelError::CyclicWorkflow { .. })
        ));
    }

    #[test]
    fn empty_workflow_rejected() {
        assert!(matches!(
            WorkflowDag::new("e", "0.1", vec![], vec![]),
            Err(ModelError::EmptyWorkflow)
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let r = WorkflowDag::new(
            "d",
            "0.1",
            vec![meta("a"), meta("b")],
            vec![edge(0, 1), edge(0, 1)],
        );
        assert!(matches!(r, Err(ModelError::DuplicateEdge { .. })));
    }

    #[test]
    fn duplicate_name_rejected() {
        let r = WorkflowDag::new("d", "0.1", vec![meta("a"), meta("a")], vec![edge(0, 1)]);
        assert!(matches!(r, Err(ModelError::DuplicateFunction { .. })));
    }

    #[test]
    fn single_node_workflow_valid() {
        let d = WorkflowDag::new("one", "0.1", vec![meta("only")], vec![]).unwrap();
        assert_eq!(d.start(), NodeId(0));
        assert_eq!(d.sinks(), vec![NodeId(0)]);
        assert!(!d.has_sync_nodes());
    }

    #[test]
    fn reachable_sync_nodes_from_branch() {
        let d = diamond();
        assert_eq!(d.reachable_sync_nodes(NodeId(1)), vec![NodeId(3)]);
        assert_eq!(d.reachable_sync_nodes(NodeId(0)), vec![NodeId(3)]);
        assert!(d.reachable_sync_nodes(NodeId(3)).is_empty());
    }

    #[test]
    fn descendants_of_start_cover_all() {
        let d = diamond();
        assert_eq!(
            d.descendants(NodeId(0)),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn edge_between_lookup() {
        let d = diamond();
        assert!(d.edge_between(NodeId(0), NodeId(1)).is_some());
        assert!(d.edge_between(NodeId(1), NodeId(2)).is_none());
    }

    #[test]
    fn dot_export_marks_structure() {
        let d = diamond();
        let dot = d.to_dot();
        assert!(dot.starts_with("digraph \"diamond\""));
        assert!(dot.contains("doublecircle"), "sync node marked");
        assert_eq!(dot.matches("->").count(), 4, "all edges rendered");
        // Conditional edges render dashed.
        let c = WorkflowDag::new(
            "c",
            "0.1",
            vec![meta("a"), meta("b")],
            vec![Edge {
                from: NodeId(0),
                to: NodeId(1),
                conditional: true,
            }],
        )
        .unwrap();
        assert!(c.to_dot().contains("style=dashed"));
    }

    #[test]
    fn unreachable_node_rejected() {
        // 0 -> 1, and 2 -> 3 isolated (two starts => MultipleStartNodes is
        // also acceptable; the validator reports the first structural error).
        let r = WorkflowDag::new(
            "u",
            "0.1",
            vec![meta("a"), meta("b"), meta("c"), meta("d")],
            vec![edge(0, 1), edge(2, 3)],
        );
        assert!(r.is_err());
    }
}
