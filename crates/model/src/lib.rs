//! Workflow model for the Caribou geospatial-shifting framework.
//!
//! This crate is the dependency root of the workspace. It defines the
//! vocabulary every other crate speaks:
//!
//! * [`region`] — cloud regions, providers, and the region catalog;
//! * [`dag`] — the workflow DAG of §4 of the paper (nodes, conditional
//!   edges, synchronization nodes, validation);
//! * [`plan`] — deployment plans `ψ : N → R` and hourly plan sets;
//! * [`constraints`] — per-function and workflow-level region constraints
//!   and QoS tolerances;
//! * [`profile`] — resource profiles (execution-time distributions, memory
//!   sizes, payload sizes, edge probabilities) that stand in for the
//!   measured behaviour of real benchmark code;
//! * [`builder`] — the developer-facing API mirroring the paper's Listing 1
//!   and the "static analysis" that extracts a DAG from it;
//! * [`manifest`] — the deployment manifest (the paper's `config.yml` and
//!   `iam_policy.json`);
//! * [`dist`] — distribution specifications used throughout the models;
//! * [`intern`] — interned, cheaply cloneable strings ([`intern::IStr`])
//!   for the data-plane hot paths;
//! * [`rng`] — a small, in-repo, seed-deterministic PCG32 generator so that
//!   every experiment is reproducible independent of external crate
//!   versions.
//!
//! # Examples
//!
//! ```
//! use caribou_model::builder::Workflow;
//!
//! let mut wf = Workflow::new("hello", "0.1");
//! let a = wf.serverless_function("A").register();
//! let b = wf.serverless_function("B").register();
//! wf.invoke(a, b, None);
//! let dag = wf.extract_dag().unwrap();
//! assert_eq!(dag.node_count(), 2);
//! ```

pub mod builder;
pub mod constraints;
pub mod dag;
pub mod dist;
pub mod error;
pub mod intern;
pub mod manifest;
pub mod plan;
pub mod profile;
pub mod region;
pub mod rng;

pub use builder::Workflow;
pub use constraints::{Constraints, Tolerances};
pub use dag::{EdgeId, NodeId, WorkflowDag};
pub use error::ModelError;
pub use intern::{IStr, StrInterner};
pub use manifest::DeploymentManifest;
pub use plan::{DeploymentPlan, HourlyPlans};
pub use profile::WorkflowProfile;
pub use region::{Provider, ProviderRegion, ProviderSet, RegionCatalog, RegionId, RegionSpec};
pub use rng::Pcg32;
