//! Developer-facing workflow declaration API.
//!
//! This is the Rust analogue of the paper's Python API (Listing 1): one
//! [`Workflow`] type plus three core operations — registering a serverless
//! function, declaring an invocation (a DAG edge), and declaring
//! predecessor-data consumption (a synchronization node). The paper
//! extracts the DAG from source code by static analysis at initial
//! deployment (§6.1); here the builder records the declarations and
//! [`Workflow::extract_dag`] plays the role of that analysis, including all
//! of its structural validation.
//!
//! # Examples
//!
//! A two-stage pipeline with a region-restricted first stage:
//!
//! ```
//! use caribou_model::builder::Workflow;
//! use caribou_model::constraints::RegionFilter;
//! use caribou_model::region::RegionId;
//!
//! let mut wf = Workflow::new("example", "0.1");
//! let validate = wf
//!     .serverless_function("Validate")
//!     .allowed_regions(RegionFilter::only([RegionId(0)]))
//!     .register();
//! let speak = wf.serverless_function("Text2Speech").register();
//! wf.invoke(validate, speak, None);
//! let dag = wf.extract_dag().unwrap();
//! assert_eq!(dag.node_count(), 2);
//! ```

use serde::{Deserialize, Serialize};

use crate::constraints::{Constraints, Objective, RegionFilter, Tolerances};
use crate::dag::{Edge, NodeId, NodeMeta, WorkflowDag};
use crate::dist::DistSpec;
use crate::error::ModelError;
use crate::profile::{EdgeProfile, NodeProfile, WorkflowProfile};

/// Handle to a registered serverless function within a [`Workflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionHandle(usize);

#[derive(Debug, Clone)]
struct FunctionDecl {
    name: String,
    source_function: String,
    filter: Option<RegionFilter>,
    profile: NodeProfile,
    consumes_predecessor_data: bool,
}

#[derive(Debug, Clone)]
struct CallDecl {
    from: FunctionHandle,
    to: FunctionHandle,
    /// `None` for an unconditional invocation; `Some(p)` for a conditional
    /// one with learned/declared probability `p`.
    conditional: Option<f64>,
    payload: DistSpec,
}

/// A workflow under declaration.
#[derive(Debug, Clone)]
pub struct Workflow {
    name: String,
    version: String,
    functions: Vec<FunctionDecl>,
    calls: Vec<CallDecl>,
    input: DistSpec,
    tolerances: Tolerances,
    objective: Objective,
    workflow_filter: RegionFilter,
}

impl Workflow {
    /// Starts declaring a new workflow.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            version: version.into(),
            functions: Vec::new(),
            calls: Vec::new(),
            input: DistSpec::Constant { value: 0.0 },
            tolerances: Tolerances::default(),
            objective: Objective::Carbon,
            workflow_filter: RegionFilter::any(),
        }
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Workflow version.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Begins registering a serverless function (the analogue of the
    /// `@workflow.serverless_function(...)` decorator).
    pub fn serverless_function(&mut self, name: impl Into<String>) -> FunctionBuilder<'_> {
        let name = name.into();
        FunctionBuilder {
            workflow: self,
            decl: FunctionDecl {
                source_function: name.clone(),
                name,
                filter: None,
                profile: NodeProfile {
                    memory_mb: 1769,
                    exec_time: DistSpec::Constant { value: 1.0 },
                    cpu_utilization: 0.7,
                    external_data_bytes: 0.0,
                },
                consumes_predecessor_data: false,
            },
        }
    }

    /// Declares an invocation edge from `from` to `to` (the analogue of
    /// `invoke_serverless_function`). `conditional` is `None` for an
    /// always-taken edge or `Some(probability)` for a conditional edge.
    ///
    /// Returns a handle for attaching the intermediate-data payload spec.
    pub fn invoke(
        &mut self,
        from: FunctionHandle,
        to: FunctionHandle,
        conditional: Option<f64>,
    ) -> CallBuilder<'_> {
        self.calls.push(CallDecl {
            from,
            to,
            conditional,
            payload: DistSpec::Constant { value: 1024.0 },
        });
        let idx = self.calls.len() - 1;
        CallBuilder {
            workflow: self,
            idx,
        }
    }

    /// Declares that `function` retrieves intermediate data from all of its
    /// predecessors (the analogue of `get_predecessor_data`), marking it as
    /// a synchronization node. Extraction validates that the function
    /// indeed has more than one incoming edge.
    pub fn get_predecessor_data(&mut self, function: FunctionHandle) {
        self.functions[function.0].consumes_predecessor_data = true;
    }

    /// Sets the client input payload distribution delivered to the start
    /// node.
    pub fn set_input(&mut self, input: DistSpec) {
        self.input = input;
    }

    /// Sets workflow-level QoS tolerances (the `config.yml` analogue).
    pub fn set_tolerances(&mut self, tolerances: Tolerances) {
        self.tolerances = tolerances;
    }

    /// Sets the optimization priority.
    pub fn set_objective(&mut self, objective: Objective) {
        self.objective = objective;
    }

    /// Sets the workflow-level region filter.
    pub fn set_workflow_filter(&mut self, filter: RegionFilter) {
        self.workflow_filter = filter;
    }

    /// Extracts and validates the workflow DAG ("static code analysis",
    /// §6.1).
    ///
    /// Beyond [`WorkflowDag::new`]'s structural checks this enforces the
    /// synchronization contract: every node with more than one incoming
    /// edge must have declared [`Workflow::get_predecessor_data`].
    pub fn extract_dag(&self) -> Result<WorkflowDag, ModelError> {
        let nodes: Vec<NodeMeta> = self
            .functions
            .iter()
            .map(|f| NodeMeta {
                name: f.name.clone(),
                source_function: f.source_function.clone(),
            })
            .collect();
        let edges: Vec<Edge> = self
            .calls
            .iter()
            .map(|c| Edge {
                from: NodeId(c.from.0 as u32),
                to: NodeId(c.to.0 as u32),
                conditional: c.conditional.is_some(),
            })
            .collect();
        let dag = WorkflowDag::new(self.name.clone(), self.version.clone(), nodes, edges)?;
        for n in dag.all_nodes() {
            let decl = &self.functions[n.index()];
            if dag.is_sync_node(n) && !decl.consumes_predecessor_data {
                return Err(ModelError::InvalidConstraint {
                    reason: format!(
                        "function `{}` has multiple predecessors but does not call \
                         get_predecessor_data",
                        decl.name
                    ),
                });
            }
        }
        Ok(dag)
    }

    /// Extracts the resource profile parallel to the extracted DAG.
    pub fn extract_profile(&self) -> Result<WorkflowProfile, ModelError> {
        let dag = self.extract_dag()?;
        let profile = WorkflowProfile {
            nodes: self.functions.iter().map(|f| f.profile.clone()).collect(),
            edges: self
                .calls
                .iter()
                .map(|c| EdgeProfile {
                    payload_bytes: c.payload.clone(),
                    probability: c.conditional.unwrap_or(1.0),
                })
                .collect(),
            input_bytes: self.input.clone(),
        };
        profile.validate(&dag)?;
        Ok(profile)
    }

    /// Extracts the constraint set (per-node filters, tolerances,
    /// objective).
    pub fn extract_constraints(&self) -> Constraints {
        Constraints {
            workflow: self.workflow_filter.clone(),
            per_node: self.functions.iter().map(|f| f.filter.clone()).collect(),
            tolerances: self.tolerances,
            objective: self.objective,
        }
    }

    /// Extracts DAG, profile, and constraints in one call.
    pub fn extract(&self) -> Result<(WorkflowDag, WorkflowProfile, Constraints), ModelError> {
        Ok((
            self.extract_dag()?,
            self.extract_profile()?,
            self.extract_constraints(),
        ))
    }
}

/// Builder for one serverless function registration.
#[derive(Debug)]
pub struct FunctionBuilder<'w> {
    workflow: &'w mut Workflow,
    decl: FunctionDecl,
}

impl FunctionBuilder<'_> {
    /// Restricts the regions this function may be deployed to
    /// (function-level data compliance, §8; supersedes the workflow-level
    /// filter).
    pub fn allowed_regions(mut self, filter: RegionFilter) -> Self {
        self.decl.filter = Some(filter);
        self
    }

    /// Declares this stage as belonging to the given source-code function;
    /// several stages may share one source function (§4).
    pub fn stage_of(mut self, source_function: impl Into<String>) -> Self {
        self.decl.source_function = source_function.into();
        self
    }

    /// Sets the configured memory size in MB.
    pub fn memory_mb(mut self, memory_mb: u32) -> Self {
        self.decl.profile.memory_mb = memory_mb;
        self
    }

    /// Sets the execution-time distribution (seconds, reference hardware).
    pub fn exec_time(mut self, dist: DistSpec) -> Self {
        self.decl.profile.exec_time = dist;
        self
    }

    /// Sets the average CPU utilization in `[0, 1]`.
    pub fn cpu_utilization(mut self, utilization: f64) -> Self {
        self.decl.profile.cpu_utilization = utilization;
        self
    }

    /// Sets the bytes of home-region external data accessed per execution.
    pub fn external_data_bytes(mut self, bytes: f64) -> Self {
        self.decl.profile.external_data_bytes = bytes;
        self
    }

    /// Completes the registration, returning the function handle.
    pub fn register(self) -> FunctionHandle {
        self.workflow.functions.push(self.decl);
        FunctionHandle(self.workflow.functions.len() - 1)
    }
}

/// Builder for one declared invocation edge.
#[derive(Debug)]
pub struct CallBuilder<'w> {
    workflow: &'w mut Workflow,
    idx: usize,
}

impl CallBuilder<'_> {
    /// Sets the intermediate-data payload distribution (bytes).
    pub fn payload(self, dist: DistSpec) -> Self {
        self.workflow.calls[self.idx].payload = dist;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain_extracts() {
        let mut wf = Workflow::new("chain", "1.0");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").memory_mb(512).register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 2048.0 });
        let (dag, profile, constraints) = wf.extract().unwrap();
        assert_eq!(dag.node_count(), 2);
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(profile.nodes[1].memory_mb, 512);
        assert_eq!(
            profile.edges[0].payload_bytes,
            DistSpec::Constant { value: 2048.0 }
        );
        assert_eq!(constraints.per_node.len(), 2);
    }

    #[test]
    fn sync_without_get_predecessor_data_rejected() {
        let mut wf = Workflow::new("join", "1.0");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        let c = wf.serverless_function("C").register();
        let d = wf.serverless_function("D").register();
        wf.invoke(a, b, None);
        wf.invoke(a, c, None);
        wf.invoke(b, d, None);
        wf.invoke(c, d, None);
        assert!(wf.extract_dag().is_err());
        wf.get_predecessor_data(d);
        assert!(wf.extract_dag().is_ok());
        assert!(wf.extract_dag().unwrap().is_sync_node(NodeId(3)));
    }

    #[test]
    fn conditional_edge_probability_propagates() {
        let mut wf = Workflow::new("cond", "1.0");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, Some(0.3));
        let dag = wf.extract_dag().unwrap();
        assert!(dag.has_conditional_edges());
        let profile = wf.extract_profile().unwrap();
        assert!((profile.edges[0].probability - 0.3).abs() < 1e-12);
    }

    #[test]
    fn function_level_filter_recorded() {
        let mut wf = Workflow::new("f", "1.0");
        let a = wf
            .serverless_function("A")
            .allowed_regions(RegionFilter::countries(["US"]))
            .register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        let c = wf.extract_constraints();
        assert!(c.per_node[0].is_some());
        assert!(c.per_node[1].is_none());
    }

    #[test]
    fn cyclic_declaration_rejected() {
        let mut wf = Workflow::new("cyc", "1.0");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        wf.invoke(b, a, None);
        // `b -> a` would need `a` to be a sync node consumer; mark both so
        // the cycle itself is what gets reported.
        wf.get_predecessor_data(a);
        assert!(wf.extract_dag().is_err());
    }

    #[test]
    fn stage_of_shares_source_function() {
        let mut wf = Workflow::new("stages", "1.0");
        let a = wf
            .serverless_function("Resize_1")
            .stage_of("resize")
            .register();
        let b = wf
            .serverless_function("Resize_2")
            .stage_of("resize")
            .register();
        wf.invoke(a, b, None);
        let dag = wf.extract_dag().unwrap();
        assert_eq!(dag.node(NodeId(0)).source_function, "resize");
        assert_eq!(dag.node(NodeId(1)).source_function, "resize");
        assert_ne!(dag.node(NodeId(0)).name, dag.node(NodeId(1)).name);
    }

    #[test]
    fn objective_and_tolerances_recorded() {
        let mut wf = Workflow::new("o", "1.0");
        wf.serverless_function("A").register();
        wf.set_objective(Objective::Cost);
        wf.set_tolerances(Tolerances {
            latency: 0.2,
            cost: 0.0,
            carbon: 1.0,
        });
        let c = wf.extract_constraints();
        assert_eq!(c.objective, Objective::Cost);
        assert!((c.tolerances.latency - 0.2).abs() < 1e-12);
    }
}
