//! A small, in-repo, seed-deterministic random number generator.
//!
//! Every stochastic component in the workspace (carbon noise, latency
//! jitter, Monte Carlo estimation, HBSS sampling, workload input selection)
//! draws from this generator so that experiment results are bit-stable
//! across machines and independent of external crate version bumps. The
//! implementation is the reference PCG-XSH-RR 64/32 generator of O'Neill.

/// A PCG-XSH-RR 64/32 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use caribou_model::rng::Pcg32;
///
/// let mut a = Pcg32::seed(42);
/// let mut b = Pcg32::seed(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// The SplitMix64 increment ("golden gamma").
const SPLITMIX_GAMMA: u64 = 0x9e3779b97f4a7c15;

/// SplitMix64's avalanching finalizer: a cheap bijective mix whose output
/// is statistically independent of small input deltas.
///
/// This is the primitive behind [`SeedSplitter`]: hashing a label chain
/// through `mix64` yields seeds that are a pure function of the labels —
/// no generator state is consumed, so deriving seed N does not depend on
/// whether seeds 0..N-1 were derived first. That property is what makes
/// parallel solver evaluation order-independent.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A stateless seed splitter (SplitMix-style).
///
/// Unlike [`Pcg32::fork`], which advances the parent generator and
/// therefore makes every derived stream depend on derivation *order*,
/// `SeedSplitter` derives streams purely from the values absorbed into
/// it. Two splitters fed the same labels in the same sequence produce the
/// same stream no matter what happened elsewhere — the foundation of the
/// solver engine's "bit-identical at any worker count" guarantee.
///
/// # Examples
///
/// ```
/// use caribou_model::rng::SeedSplitter;
///
/// let a = SeedSplitter::new(42).absorb(7).absorb(3).rng();
/// let b = SeedSplitter::new(42).absorb(7).absorb(3).rng();
/// assert_eq!(a, b);
/// let c = SeedSplitter::new(42).absorb(7).absorb(4).rng();
/// assert_ne!(b, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    state: u64,
}

impl SeedSplitter {
    /// Starts a splitter from a root seed.
    pub fn new(root: u64) -> Self {
        SeedSplitter { state: mix64(root) }
    }

    /// Absorbs one label (a region index, an hour's bit pattern, a salt)
    /// into the derivation chain.
    #[must_use]
    pub fn absorb(self, label: u64) -> Self {
        SeedSplitter {
            state: mix64(self.state ^ label),
        }
    }

    /// The derived 64-bit seed.
    pub fn seed(self) -> u64 {
        self.state
    }

    /// A generator on the derived seed, with a stream selector also
    /// derived from it so distinct seeds never share a PCG stream.
    pub fn rng(self) -> Pcg32 {
        Pcg32::seed_stream(self.state, mix64(self.state))
    }
}

impl Pcg32 {
    /// Creates a generator from a seed with the default stream.
    pub fn seed(seed: u64) -> Self {
        Self::seed_stream(seed, 0xda3e39cb94b95bdb)
    }

    /// Creates a generator from a seed and an explicit stream selector.
    ///
    /// Two generators with the same seed but different streams produce
    /// uncorrelated sequences; this is used to give each subsystem its own
    /// stream derived from one experiment master seed.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives a child generator; useful for forking deterministic
    /// sub-streams (e.g. one per Monte Carlo batch).
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
        Self::seed_stream(s, s.rotate_left(17) | 1)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniformly spaced grid in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method.
        let mut m = (self.next_u32() as u64).wrapping_mul(bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u32() as u64).wrapping_mul(bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Returns a uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `len > u32::MAX as usize`.
    pub fn next_index(&mut self, len: usize) -> usize {
        assert!(len <= u32::MAX as usize, "len too large");
        self.next_bounded(len as u32) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller; the unused second variate is discarded to keep the
        // generator state a pure function of draw count.
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Returns a log-normal sample with the given log-space parameters.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Returns an exponential sample with the given rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "lambda must be positive");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Returns a Poisson sample with the given mean using inversion for
    /// small means and normal approximation above 60.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 60.0 {
            let s = self.normal(mean, mean.sqrt());
            return s.max(0.0).round() as u64;
        }
        // Knuth's inversion.
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of the slice.
    ///
    /// Returns `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_index(slice.len())])
        }
    }

    /// Samples an index according to the given non-negative weights.
    ///
    /// Returns `None` if the weights are empty or sum to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 && w.is_finite() {
                if target < *w {
                    return Some(i);
                }
                target -= *w;
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::seed(7);
        let mut b = Pcg32::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seed(1);
        let mut b = Pcg32::seed(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn streams_are_uncorrelated() {
        let mut a = Pcg32::seed_stream(1, 10);
        let mut b = Pcg32::seed_stream(1, 11);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::seed(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = Pcg32::seed(4);
        for _ in 0..10_000 {
            assert!(rng.next_bounded(7) < 7);
        }
    }

    #[test]
    fn bounded_covers_all_values() {
        let mut rng = Pcg32::seed(5);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.next_bounded(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = Pcg32::seed(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut rng = Pcg32::seed(8);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_mean_roughly_correct() {
        let mut rng = Pcg32::seed(9);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        let big = (0..n).map(|_| rng.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((big - 100.0).abs() < 1.0, "mean {big}");
    }

    #[test]
    fn weighted_choice_matches_weights() {
        let mut rng = Pcg32::seed(10);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_choice_degenerate_cases() {
        let mut rng = Pcg32::seed(11);
        assert_eq!(rng.choose_weighted(&[]), None);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.choose_weighted(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed(12);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = Pcg32::seed(13);
        let mut child = parent.fork(99);
        let same = (0..64)
            .filter(|_| parent.next_u32() == child.next_u32())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn seed_splitter_is_order_free() {
        // Deriving other streams first must not perturb a derivation —
        // the property Pcg32::fork lacks.
        let direct = SeedSplitter::new(5).absorb(1).absorb(2).seed();
        for noise in 0..16u64 {
            let _ = SeedSplitter::new(5).absorb(noise).seed();
            let again = SeedSplitter::new(5).absorb(1).absorb(2).seed();
            assert_eq!(direct, again);
        }
    }

    #[test]
    fn seed_splitter_labels_change_stream() {
        let mut a = SeedSplitter::new(9).absorb(0).rng();
        let mut b = SeedSplitter::new(9).absorb(1).rng();
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }
}
