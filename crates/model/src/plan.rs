//! Deployment plans: the mapping `ψ : N → R` of §4 and hourly plan sets.

use serde::{Deserialize, Serialize};

use crate::dag::{NodeId, WorkflowDag};
use crate::error::ModelError;
use crate::region::{Provider, RegionId};

/// A deployment plan assigning each workflow node to a region.
///
/// # Examples
///
/// ```
/// use caribou_model::plan::DeploymentPlan;
/// use caribou_model::region::RegionId;
/// use caribou_model::dag::NodeId;
///
/// let mut plan = DeploymentPlan::uniform(3, RegionId(0));
/// plan.set(NodeId(2), RegionId(4));
/// assert!(!plan.is_single_region());
/// assert_eq!(plan.regions_used(), vec![RegionId(0), RegionId(4)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeploymentPlan {
    assignment: Vec<RegionId>,
}

impl DeploymentPlan {
    /// Creates a plan from an explicit per-node assignment.
    pub fn new(assignment: Vec<RegionId>) -> Self {
        DeploymentPlan { assignment }
    }

    /// Creates the coarse single-region plan placing every node in `region`.
    pub fn uniform(node_count: usize, region: RegionId) -> Self {
        DeploymentPlan {
            assignment: vec![region; node_count],
        }
    }

    /// The region a node is deployed to.
    ///
    /// # Panics
    ///
    /// Panics if the node index exceeds the plan length.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        self.assignment[node.index()]
    }

    /// Reassigns one node.
    pub fn set(&mut self, node: NodeId, region: RegionId) {
        self.assignment[node.index()] = region;
    }

    /// Number of nodes covered by the plan.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the plan covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The underlying assignment slice.
    pub fn assignment(&self) -> &[RegionId] {
        &self.assignment
    }

    /// Whether every node is placed in the same region.
    pub fn is_single_region(&self) -> bool {
        self.assignment.windows(2).all(|w| w[0] == w[1])
    }

    /// The distinct regions used by the plan, sorted.
    pub fn regions_used(&self) -> Vec<RegionId> {
        let mut v = self.assignment.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Validates the plan against a DAG and a region universe.
    pub fn validate(
        &self,
        dag: &WorkflowDag,
        permitted: &[Vec<RegionId>],
    ) -> Result<(), ModelError> {
        if self.assignment.len() != dag.node_count() {
            return Err(ModelError::InvalidPlan {
                reason: format!(
                    "plan covers {} nodes, workflow has {}",
                    self.assignment.len(),
                    dag.node_count()
                ),
            });
        }
        for (i, r) in self.assignment.iter().enumerate() {
            if !permitted[i].contains(r) {
                return Err(ModelError::InvalidPlan {
                    reason: format!("node n{i} assigned non-permitted region {r}"),
                });
            }
        }
        Ok(())
    }

    /// The set of nodes whose assignment differs from `other`; these are the
    /// nodes the Deployment Migrator must re-deploy.
    pub fn diff(&self, other: &DeploymentPlan) -> Vec<NodeId> {
        self.assignment
            .iter()
            .zip(other.assignment.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Granularity of a generated plan set (§5.2): the carbon budget decides
/// whether the solver produces one plan per day or one per hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanGranularity {
    /// A single plan applied for the whole day.
    Daily,
    /// Twenty-four plans, one per hour of the day.
    Hourly,
}

/// A set of deployment plans covering a day, one per hour (§5.1: "24 plans
/// are generated per solve — one for each hour, given sufficient carbon
/// budget").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlyPlans {
    /// Plan for each hour-of-day `0..24`. With [`PlanGranularity::Daily`]
    /// all 24 entries are the same plan.
    plans: Vec<DeploymentPlan>,
    /// Granularity the plans were solved at.
    pub granularity: PlanGranularity,
    /// Simulation time (seconds) the plan set was generated at.
    pub generated_at: f64,
    /// Simulation time (seconds) after which the plan set expires and all
    /// traffic must be routed to the home region (§5.2).
    pub expires_at: f64,
}

impl HourlyPlans {
    /// Creates an hourly plan set.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 24 plans are provided.
    pub fn hourly(plans: Vec<DeploymentPlan>, generated_at: f64, expires_at: f64) -> Self {
        assert_eq!(plans.len(), 24, "hourly plan set requires 24 plans");
        HourlyPlans {
            plans,
            granularity: PlanGranularity::Hourly,
            generated_at,
            expires_at,
        }
    }

    /// Creates a daily plan set by replicating one plan across all hours.
    pub fn daily(plan: DeploymentPlan, generated_at: f64, expires_at: f64) -> Self {
        HourlyPlans {
            plans: vec![plan; 24],
            granularity: PlanGranularity::Daily,
            generated_at,
            expires_at,
        }
    }

    /// The plan in effect at the given hour of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn plan_for_hour(&self, hour: usize) -> &DeploymentPlan {
        assert!(hour < 24, "hour out of range");
        &self.plans[hour]
    }

    /// Whether the plan set has expired at simulation time `now`.
    pub fn expired(&self, now: f64) -> bool {
        now >= self.expires_at
    }

    /// Iterates over the 24 hourly plans.
    pub fn iter(&self) -> impl Iterator<Item = &DeploymentPlan> {
        self.plans.iter()
    }

    /// All distinct regions used across the day; the Migrator must ensure
    /// function images and topics exist in each of these.
    pub fn regions_used(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> = self.plans.iter().flat_map(|p| p.regions_used()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// What a contingency fallback plan was solved without: a single region
/// or an entire provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exclusion {
    /// The fallback excludes one region.
    Region(RegionId),
    /// The fallback excludes every region of a provider.
    Provider(Provider),
}

impl Exclusion {
    /// Stable label for reports (`region:r5`, `provider:gcp`).
    pub fn label(&self) -> String {
        match self {
            Exclusion::Region(r) => format!("region:r{}", r.0),
            Exclusion::Provider(p) => format!("provider:{p}"),
        }
    }
}

/// One ranked fallback: an exclusion, the concrete regions it removes
/// from the plan space, the plan set solved without them, and the
/// objective metric the solver estimated for it (used for ranking).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContingencyEntry {
    /// What was excluded from the plan space.
    pub exclusion: Exclusion,
    /// Concrete regions the exclusion removes. The fallback plan set is
    /// guaranteed to reference none of them.
    pub excluded_regions: Vec<RegionId>,
    /// Fallback plan set solved over the reduced space.
    pub plans: HourlyPlans,
    /// Mean objective metric across the 24 hourly plans (lower is
    /// better); entries are ranked by it.
    pub metric: f64,
}

/// Precomputed fallback plans ranked best-first, emitted by the solver
/// alongside the primary schedule so the runtime can fail over without
/// re-solving (and without ad-hoc re-route-home).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ContingencyTable {
    /// Fallback entries, ranked by ascending `metric`.
    pub entries: Vec<ContingencyEntry>,
}

impl ContingencyTable {
    /// A table with no fallbacks.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of fallback entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no fallbacks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The best-ranked entry whose exclusion covers every region in
    /// `down` — its plan set is guaranteed not to reference any of them.
    /// `None` when no precomputed fallback avoids the whole down set.
    pub fn best_for(&self, down: &[RegionId]) -> Option<&ContingencyEntry> {
        if down.is_empty() {
            return None;
        }
        self.entries
            .iter()
            .find(|e| down.iter().all(|r| e.excluded_regions.contains(r)))
    }

    /// All distinct regions used across every fallback plan set; the
    /// Migrator must pre-deploy each of these for failover to be
    /// deterministic.
    pub fn regions_used(&self) -> Vec<RegionId> {
        let mut v: Vec<RegionId> = self
            .entries
            .iter()
            .flat_map(|e| e.plans.regions_used())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Edge, NodeMeta};

    fn dag2() -> WorkflowDag {
        WorkflowDag::new(
            "two",
            "0.1",
            vec![
                NodeMeta {
                    name: "a".into(),
                    source_function: "a".into(),
                },
                NodeMeta {
                    name: "b".into(),
                    source_function: "b".into(),
                },
            ],
            vec![Edge {
                from: NodeId(0),
                to: NodeId(1),
                conditional: false,
            }],
        )
        .unwrap()
    }

    #[test]
    fn uniform_plan_is_single_region() {
        let p = DeploymentPlan::uniform(3, RegionId(2));
        assert!(p.is_single_region());
        assert_eq!(p.regions_used(), vec![RegionId(2)]);
    }

    #[test]
    fn set_and_diff() {
        let mut p = DeploymentPlan::uniform(3, RegionId(0));
        let q = p.clone();
        p.set(NodeId(1), RegionId(4));
        assert!(!p.is_single_region());
        assert_eq!(p.diff(&q), vec![NodeId(1)]);
        assert_eq!(q.diff(&q), Vec::<NodeId>::new());
    }

    #[test]
    fn validate_length_mismatch() {
        let dag = dag2();
        let p = DeploymentPlan::uniform(3, RegionId(0));
        let permitted = vec![vec![RegionId(0)]; 3];
        assert!(p.validate(&dag, &permitted).is_err());
    }

    #[test]
    fn validate_permitted_regions() {
        let dag = dag2();
        let permitted = vec![vec![RegionId(0), RegionId(1)], vec![RegionId(0)]];
        let ok = DeploymentPlan::new(vec![RegionId(1), RegionId(0)]);
        assert!(ok.validate(&dag, &permitted).is_ok());
        let bad = DeploymentPlan::new(vec![RegionId(1), RegionId(1)]);
        assert!(bad.validate(&dag, &permitted).is_err());
    }

    #[test]
    fn hourly_plans_lookup_and_expiry() {
        let p0 = DeploymentPlan::uniform(2, RegionId(0));
        let mut plans = vec![p0.clone(); 24];
        plans[5] = DeploymentPlan::uniform(2, RegionId(1));
        let hp = HourlyPlans::hourly(plans, 100.0, 200.0);
        assert_eq!(hp.plan_for_hour(5).region_of(NodeId(0)), RegionId(1));
        assert_eq!(hp.plan_for_hour(6).region_of(NodeId(0)), RegionId(0));
        assert!(!hp.expired(150.0));
        assert!(hp.expired(200.0));
        assert_eq!(hp.regions_used(), vec![RegionId(0), RegionId(1)]);
    }

    #[test]
    fn daily_plans_replicate() {
        let hp = HourlyPlans::daily(DeploymentPlan::uniform(2, RegionId(3)), 0.0, 10.0);
        assert_eq!(hp.granularity, PlanGranularity::Daily);
        for h in 0..24 {
            assert_eq!(hp.plan_for_hour(h).region_of(NodeId(1)), RegionId(3));
        }
    }

    #[test]
    #[should_panic]
    fn hourly_requires_24() {
        HourlyPlans::hourly(vec![DeploymentPlan::uniform(1, RegionId(0)); 23], 0.0, 1.0);
    }

    fn entry(exclusion: Exclusion, excluded: Vec<RegionId>, region: RegionId) -> ContingencyEntry {
        ContingencyEntry {
            exclusion,
            excluded_regions: excluded,
            plans: HourlyPlans::daily(DeploymentPlan::uniform(2, region), 0.0, 1e9),
            metric: 1.0,
        }
    }

    #[test]
    fn contingency_best_for_respects_rank_and_coverage() {
        let table = ContingencyTable {
            entries: vec![
                entry(
                    Exclusion::Region(RegionId(5)),
                    vec![RegionId(5)],
                    RegionId(0),
                ),
                entry(
                    Exclusion::Provider(Provider::Gcp),
                    vec![RegionId(5), RegionId(6)],
                    RegionId(1),
                ),
            ],
        };
        // Single-region loss: the best-ranked (first) covering entry wins.
        let e = table.best_for(&[RegionId(5)]).unwrap();
        assert_eq!(e.exclusion, Exclusion::Region(RegionId(5)));
        // Provider-wide loss: only the provider exclusion covers both.
        let e = table.best_for(&[RegionId(5), RegionId(6)]).unwrap();
        assert_eq!(e.exclusion, Exclusion::Provider(Provider::Gcp));
        // No fallback avoids an unexcluded region.
        assert!(table.best_for(&[RegionId(9)]).is_none());
        assert!(table.best_for(&[]).is_none());
        assert_eq!(table.regions_used(), vec![RegionId(0), RegionId(1)]);
    }

    #[test]
    fn exclusion_labels_are_stable() {
        assert_eq!(Exclusion::Region(RegionId(5)).label(), "region:r5");
        assert_eq!(Exclusion::Provider(Provider::Gcp).label(), "provider:gcp");
    }
}
