//! Coarse single-region solver — the `O(|R|)` baseline of §5.1.
//!
//! "A simple approach to tame the search space is to limit the deployment
//! of all DAG nodes to the same region, reducing the solver complexity to
//! `O(|R|)`. However, this approach can be globally suboptimal" — it
//! cannot offload off-critical-path nodes or navigate per-node compliance.
//! The Fig. 7 experiment uses this solver for the "Coarse" bars.

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::StageModels;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::context::{SolveOutcome, SolverContext};
use crate::engine::EvalEngine;

/// Coarse search through an [`EvalEngine`]: the per-region single-region
/// candidates are independent, so they fan across the engine's worker
/// pool on seed-derived streams — bit-identical at any worker count.
pub fn solve_with<S: CarbonDataSource + Sync, M: StageModels + Sync>(
    engine: &EvalEngine,
    ctx: &SolverContext<'_, S, M>,
    hour: f64,
) -> SolveOutcome {
    let home_plan = ctx.home_plan();
    let home_estimate = engine.evaluate(ctx, &home_plan, hour);
    let home_metric = ctx.metric_of(&home_estimate);

    let candidates: Vec<DeploymentPlan> = ctx.permitted[0]
        .iter()
        .copied()
        .filter(|r| *r != ctx.home && ctx.permitted.iter().all(|set| set.contains(r)))
        .map(|r| DeploymentPlan::uniform(ctx.dag.node_count(), r))
        .collect();
    let estimates = engine.evaluate_many(ctx, &candidates, hour);

    let mut best_plan = home_plan.clone();
    let mut best_metric = home_metric;
    let mut best_estimate = home_estimate;
    let mut feasible = vec![(home_plan, home_metric)];
    let evaluated = 1 + candidates.len();
    for (plan, estimate) in candidates.into_iter().zip(estimates) {
        if ctx.violates_tolerance(&estimate, &home_estimate) {
            continue;
        }
        let metric = ctx.metric_of(&estimate);
        feasible.push((plan.clone(), metric));
        if metric < best_metric {
            best_metric = metric;
            best_plan = plan;
            best_estimate = estimate;
        }
    }
    feasible.sort_by(|a, b| a.1.total_cmp(&b.1));
    SolveOutcome {
        best: best_plan,
        best_estimate,
        home_estimate,
        evaluated,
        feasible,
    }
}

/// Evaluates the single-region plan for every region permitted for *all*
/// nodes and returns the best feasible one (home when nothing qualifies).
pub fn solve<S: CarbonDataSource, M: StageModels>(
    ctx: &SolverContext<'_, S, M>,
    hour: f64,
    rng: &mut Pcg32,
) -> SolveOutcome {
    let home_plan = ctx.home_plan();
    let home_estimate = ctx.evaluate(&home_plan, hour, rng);
    let home_metric = ctx.metric_of(&home_estimate);

    // A region is a candidate only if every node permits it.
    let candidates: Vec<RegionId> = ctx.permitted[0]
        .iter()
        .copied()
        .filter(|r| ctx.permitted.iter().all(|set| set.contains(r)))
        .collect();

    let mut best_plan = home_plan.clone();
    let mut best_metric = home_metric;
    let mut best_estimate = home_estimate;
    let mut feasible = vec![(home_plan.clone(), home_metric)];
    let mut evaluated = 1usize;

    for region in candidates {
        if region == ctx.home {
            continue;
        }
        let plan = DeploymentPlan::uniform(ctx.dag.node_count(), region);
        let estimate = ctx.evaluate(&plan, hour, rng);
        evaluated += 1;
        if ctx.violates_tolerance(&estimate, &home_estimate) {
            continue;
        }
        let metric = ctx.metric_of(&estimate);
        feasible.push((plan.clone(), metric));
        if metric < best_metric {
            best_metric = metric;
            best_plan = plan;
            best_estimate = estimate;
        }
    }
    feasible.sort_by(|a, b| a.1.total_cmp(&b.1));
    SolveOutcome {
        best: best_plan,
        best_estimate,
        home_estimate,
        evaluated,
        feasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
    use caribou_metrics::costmodel::CostModel;
    use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
    use caribou_model::builder::Workflow;
    use caribou_model::constraints::{Objective, Tolerances};
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::compute::LambdaRuntime;
    use caribou_simcloud::latency::LatencyModel;
    use caribou_simcloud::orchestration::Orchestrator;
    use caribou_simcloud::pricing::PricingCatalog;

    #[test]
    fn coarse_evaluates_one_plan_per_region() {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, spec) in cat.iter() {
            let v = if spec.name == "ca-central-1" {
                32.0
            } else {
                380.0
            };
            carbon.insert(id, CarbonSeries::new(0, vec![v; 24]));
        }
        let mut wf = Workflow::new("w", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 5.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 5.0 })
            .register();
        wf.invoke(a, b, None);
        let (dag, profile, _) = wf.extract().unwrap();
        let home = cat.id_of("us-east-1").unwrap();
        let universe = cat.evaluation_regions();
        let permitted: Vec<Vec<_>> = vec![universe.clone(); 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &runtime,
            latency: &latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 1.0,
                cost: 1.0,
                carbon: f64::INFINITY,
            },
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 300,
                cv_threshold: 0.05,
            },
        };
        let outcome = solve(&ctx, 0.5, &mut Pcg32::seed(1));
        assert_eq!(outcome.evaluated, 4); // |R| single-region plans
        assert!(outcome.best.is_single_region());
        // The clean region wins under a generous tolerance.
        assert_eq!(
            outcome.best.region_of(caribou_model::dag::NodeId(0)),
            cat.id_of("ca-central-1").unwrap()
        );

        // Engine-backed coarse solve: same candidate count and winner,
        // bit-identical at any worker count.
        let c1 = solve_with(&EvalEngine::new(3, 1), &ctx, 0.5);
        let c8 = solve_with(&EvalEngine::new(3, 8), &ctx, 0.5);
        assert_eq!(c1.evaluated, 4);
        assert_eq!(c1.best.assignment(), c8.best.assignment());
        assert_eq!(c1.best_estimate, c8.best_estimate);
        assert_eq!(
            c1.best.region_of(caribou_model::dag::NodeId(0)),
            cat.id_of("ca-central-1").unwrap()
        );
    }

    #[test]
    fn per_node_constraint_shrinks_candidate_set() {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let runtime = LambdaRuntime::aws_default(&cat);
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, _) in cat.iter() {
            carbon.insert(id, CarbonSeries::new(0, vec![100.0; 24]));
        }
        let mut wf = Workflow::new("w", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        let (dag, profile, _) = wf.extract().unwrap();
        let home = cat.id_of("us-east-1").unwrap();
        let usw2 = cat.id_of("us-west-2").unwrap();
        let ca = cat.id_of("ca-central-1").unwrap();
        // Node 0 must stay in the US: ca-central-1 is not a common region.
        let permitted = vec![vec![home, usw2], vec![home, usw2, ca]];
        let models = DefaultModels {
            profile: &profile,
            runtime: &runtime,
            latency: &latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 1.0,
                cost: 1.0,
                carbon: f64::INFINITY,
            },
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let outcome = solve(&ctx, 0.5, &mut Pcg32::seed(1));
        // Candidates: home (skipped as baseline duplicate) + us-west-2.
        assert_eq!(outcome.evaluated, 2);
        assert_ne!(
            outcome.best.region_of(caribou_model::dag::NodeId(0)),
            ca,
            "coarse must never use a region excluded for any node"
        );
    }
}
