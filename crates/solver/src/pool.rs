//! Hand-rolled scoped worker pool for candidate evaluation.
//!
//! The solver fans independent plan evaluations across cores with plain
//! `std::thread::scope` — no external runtime. Work is handed out through
//! an atomic cursor (dynamic load balancing: candidate evaluations vary
//! wildly in cost because the Monte Carlo stopping rule adapts), and every
//! result is written back at its item index, so the output order — and
//! with seed-split RNG streams, the output *values* — are independent of
//! which worker ran what.
//!
//! Telemetry sessions are thread-local, so workers never record directly;
//! the pool measures per-worker busy time and task counts and the
//! coordinating thread reports them after the join ([`PoolStats::emit`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Execution statistics of one pool run, reported by the coordinator.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Worker threads used (1 = ran inline on the caller).
    pub workers: usize,
    /// Items processed.
    pub tasks: usize,
    /// Wall-clock seconds from first hand-out to last join.
    pub wall_s: f64,
    /// Per-worker busy seconds (sum of task durations).
    pub busy_s: Vec<f64>,
    /// Per-worker task counts.
    pub tasks_per_worker: Vec<usize>,
}

impl PoolStats {
    /// Fraction of worker wall-time spent on tasks, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.wall_s <= 0.0 || self.workers == 0 {
            return 0.0;
        }
        let busy: f64 = self.busy_s.iter().sum();
        (busy / (self.wall_s * self.workers as f64)).min(1.0)
    }

    /// Records the run into the caller's telemetry session: the
    /// utilization gauge, a task counter, and one span per worker.
    pub fn emit(&self) {
        if !caribou_telemetry::is_enabled() {
            return;
        }
        caribou_telemetry::gauge("solver.pool.utilization", self.utilization());
        caribou_telemetry::gauge("solver.pool.workers", self.workers as f64);
        caribou_telemetry::count("solver.pool.tasks", self.tasks as u64);
        caribou_telemetry::observe("solver.pool.wall_s", self.wall_s);
        for (w, (busy, tasks)) in self
            .busy_s
            .iter()
            .zip(self.tasks_per_worker.iter())
            .enumerate()
        {
            caribou_telemetry::span_at(
                "solver",
                format!("pool.worker{w} ({tasks} tasks)"),
                0.0,
                *busy,
                0,
                format!("pool.worker{w}"),
            );
        }
    }
}

/// Runs `f(0..n)` across `workers` threads and returns the results in
/// item order plus the run's [`PoolStats`].
///
/// `workers <= 1` (or a single item) runs inline on the caller's thread:
/// zero spawn overhead and full access to its telemetry session. The
/// closure must be deterministic per index for the pool to preserve
/// bit-reproducibility — derive any randomness from the index, never from
/// shared mutable state.
pub fn map_indexed<T, F>(workers: usize, n: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let start = Instant::now();
    if workers <= 1 || n <= 1 {
        let mut busy = 0.0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t0 = Instant::now();
            out.push(f(i));
            busy += t0.elapsed().as_secs_f64();
        }
        let stats = PoolStats {
            workers: 1,
            tasks: n,
            wall_s: start.elapsed().as_secs_f64(),
            busy_s: vec![busy],
            tasks_per_worker: vec![n],
        };
        return (out, stats);
    }

    let threads = workers.min(n);
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<(Vec<(usize, T)>, f64)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut got: Vec<(usize, T)> = Vec::new();
                    let mut busy = 0.0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let r = f(i);
                        busy += t0.elapsed().as_secs_f64();
                        got.push((i, r));
                    }
                    (got, busy)
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("pool worker panicked"));
        }
    });

    let mut busy_s = Vec::with_capacity(threads);
    let mut tasks_per_worker = Vec::with_capacity(threads);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (got, busy) in per_worker {
        busy_s.push(busy);
        tasks_per_worker.push(got.len());
        for (i, r) in got {
            slots[i] = Some(r);
        }
    }
    let out: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect();
    let stats = PoolStats {
        workers: threads,
        tasks: n,
        wall_s: start.elapsed().as_secs_f64(),
        busy_s,
        tasks_per_worker,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        for workers in [1, 2, 3, 8] {
            let (out, stats) = map_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.tasks, 37);
            assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 37);
        }
    }

    #[test]
    fn zero_items_is_fine() {
        let (out, stats) = map_indexed(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.tasks, 0);
    }

    #[test]
    fn single_worker_runs_inline() {
        let (out, stats) = map_indexed(1, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn more_workers_than_items_caps_threads() {
        let (out, stats) = map_indexed(16, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(stats.workers <= 3);
    }

    #[test]
    fn utilization_in_unit_interval() {
        let (_, stats) = map_indexed(2, 8, |i| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            i
        });
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }
}
