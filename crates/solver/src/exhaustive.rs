//! Exhaustive deployment search — the intractable-in-general ground truth.
//!
//! The paper found BFS-style exhaustive solving "intractable and
//! resource-inefficient" at production scale (§5.1); it remains invaluable
//! for small instances: correctness tests compare HBSS against the true
//! optimum, and the solver ablation bench quantifies HBSS's optimality
//! gap.

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::StageModels;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::context::{SolveOutcome, SolverContext};
use crate::engine::EvalEngine;

/// Upper bound on the search-space size exhaustive solving accepts.
pub const MAX_SPACE: usize = 100_000;

/// Enumerates the permitted assignments in odometer order.
fn enumerate_plans<S: CarbonDataSource, M: StageModels>(
    ctx: &SolverContext<'_, S, M>,
    space: usize,
) -> Vec<DeploymentPlan> {
    let n = ctx.dag.node_count();
    let mut idx = vec![0usize; n];
    let mut plans = Vec::with_capacity(space);
    loop {
        let assignment: Vec<RegionId> = (0..n).map(|i| ctx.permitted[i][idx[i]]).collect();
        plans.push(DeploymentPlan::new(assignment));
        let mut carry = true;
        for (i, slot) in idx.iter_mut().enumerate() {
            if !carry {
                break;
            }
            *slot += 1;
            if *slot < ctx.permitted[i].len() {
                carry = false;
            } else {
                *slot = 0;
            }
        }
        if carry {
            return plans;
        }
    }
}

/// Exhaustive search through an [`EvalEngine`]: the full space is
/// enumerated up front and fanned across the engine's worker pool, each
/// plan on its own seed-derived stream. Bit-identical at any worker
/// count. Returns `None` when the space exceeds [`MAX_SPACE`].
pub fn solve_with<S: CarbonDataSource + Sync, M: StageModels + Sync>(
    engine: &EvalEngine,
    ctx: &SolverContext<'_, S, M>,
    hour: f64,
) -> Option<SolveOutcome> {
    let space = ctx.search_space_size();
    if space > MAX_SPACE {
        return None;
    }
    let home_plan = ctx.home_plan();
    let home_estimate = engine.evaluate(ctx, &home_plan, hour);
    let plans = enumerate_plans(ctx, space);
    let estimates = engine.evaluate_many(ctx, &plans, hour);

    let mut best_plan = home_plan;
    let mut best_metric = ctx.metric_of(&home_estimate);
    let mut best_estimate = home_estimate;
    let mut feasible: Vec<(DeploymentPlan, f64)> = Vec::new();
    for (plan, estimate) in plans.into_iter().zip(estimates) {
        if ctx.violates_tolerance(&estimate, &home_estimate) {
            continue;
        }
        let metric = ctx.metric_of(&estimate);
        feasible.push((plan.clone(), metric));
        if metric < best_metric {
            best_metric = metric;
            best_plan = plan;
            best_estimate = estimate;
        }
    }
    feasible.sort_by(|a, b| a.1.total_cmp(&b.1));
    Some(SolveOutcome {
        best: best_plan,
        best_estimate,
        home_estimate,
        evaluated: space,
        feasible,
    })
}

/// Exhaustively enumerates `|R|^|N|` deployments.
///
/// Returns `None` when the space exceeds [`MAX_SPACE`].
pub fn solve<S: CarbonDataSource, M: StageModels>(
    ctx: &SolverContext<'_, S, M>,
    hour: f64,
    rng: &mut Pcg32,
) -> Option<SolveOutcome> {
    let space = ctx.search_space_size();
    if space > MAX_SPACE {
        return None;
    }
    let home_plan = ctx.home_plan();
    let home_estimate = ctx.evaluate(&home_plan, hour, rng);
    let home_metric = ctx.metric_of(&home_estimate);

    let mut best_plan = home_plan.clone();
    let mut best_metric = home_metric;
    let mut best_estimate = home_estimate;
    let mut feasible: Vec<(DeploymentPlan, f64)> = Vec::new();
    let mut evaluated = 0usize;

    let n = ctx.dag.node_count();
    let mut idx = vec![0usize; n];
    loop {
        let assignment: Vec<RegionId> = (0..n).map(|i| ctx.permitted[i][idx[i]]).collect();
        let plan = DeploymentPlan::new(assignment);
        let estimate = if plan == home_plan {
            home_estimate
        } else {
            ctx.evaluate(&plan, hour, rng)
        };
        evaluated += 1;
        if !ctx.violates_tolerance(&estimate, &home_estimate) {
            let metric = ctx.metric_of(&estimate);
            feasible.push((plan.clone(), metric));
            if metric < best_metric {
                best_metric = metric;
                best_plan = plan;
                best_estimate = estimate;
            }
        }
        // Odometer increment over the permitted sets.
        let mut carry = true;
        for (i, slot) in idx.iter_mut().enumerate() {
            if !carry {
                break;
            }
            *slot += 1;
            if *slot < ctx.permitted[i].len() {
                carry = false;
            } else {
                *slot = 0;
            }
        }
        if carry {
            break;
        }
    }
    feasible.sort_by(|a, b| a.1.total_cmp(&b.1));
    Some(SolveOutcome {
        best: best_plan,
        best_estimate,
        home_estimate,
        evaluated,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
    use caribou_metrics::costmodel::CostModel;
    use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
    use caribou_model::builder::Workflow;
    use caribou_model::constraints::{Objective, Tolerances};
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::compute::LambdaRuntime;
    use caribou_simcloud::latency::LatencyModel;
    use caribou_simcloud::orchestration::Orchestrator;
    use caribou_simcloud::pricing::PricingCatalog;

    use crate::hbss::HbssSolver;

    #[test]
    fn exhaustive_covers_space_and_hbss_matches_it() {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        runtime.exec_sigma = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, spec) in cat.iter() {
            let v = match spec.name.as_str() {
                "us-east-1" | "us-east-2" => 380.0,
                "ca-central-1" => 32.0,
                _ => 360.0,
            };
            carbon.insert(id, CarbonSeries::new(0, vec![v; 24]));
        }

        let mut wf = Workflow::new("w", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 4.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 8.0 })
            .register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 10_000.0 });
        let (dag, profile, _) = wf.extract().unwrap();

        let home = cat.id_of("us-east-1").unwrap();
        let universe = cat.evaluation_regions();
        let permitted: Vec<Vec<_>> = vec![universe; 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &runtime,
            latency: &latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 0.5,
                cost: 0.5,
                carbon: f64::INFINITY,
            },
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 400,
                cv_threshold: 0.05,
            },
        };

        let ex = solve(&ctx, 0.5, &mut Pcg32::seed(1)).unwrap();
        assert_eq!(ex.evaluated, 16); // 4^2 assignments

        // Engine-backed enumeration: same space, same optimum, and the
        // outcome is bit-identical regardless of worker count.
        let ex1 = solve_with(&EvalEngine::new(7, 1), &ctx, 0.5).unwrap();
        let ex8 = solve_with(&EvalEngine::new(7, 8), &ctx, 0.5).unwrap();
        assert_eq!(ex1.evaluated, 16);
        assert_eq!(ex1.best.assignment(), ex8.best.assignment());
        assert_eq!(ex1.best_estimate, ex8.best_estimate);
        assert_eq!(ex1.best.assignment(), ex.best.assignment());

        let hb = HbssSolver::new().solve(&ctx, 0.5, &mut Pcg32::seed(2));
        // With a small space HBSS explores it fully; it must find a plan
        // within a small factor of the true optimum.
        let gap = ctx.metric_of(&hb.best_estimate) / ctx.metric_of(&ex.best_estimate);
        assert!(gap < 1.1, "optimality gap {gap}");
    }

    #[test]
    fn huge_space_rejected() {
        // 10 nodes × 10 regions = 10^10 — over the cap.
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let runtime = LambdaRuntime::aws_default(&cat);
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, _) in cat.iter() {
            carbon.insert(id, CarbonSeries::new(0, vec![100.0; 24]));
        }
        let mut wf = Workflow::new("big", "0.1");
        let mut prev = wf.serverless_function("n0").register();
        for i in 1..10 {
            let cur = wf.serverless_function(format!("n{i}")).register();
            wf.invoke(prev, cur, None);
            prev = cur;
        }
        let (dag, profile, _) = wf.extract().unwrap();
        let home = cat.id_of("us-east-1").unwrap();
        let permitted: Vec<Vec<_>> = vec![cat.all_ids(); 10];
        let models = DefaultModels {
            profile: &profile,
            runtime: &runtime,
            latency: &latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances::default(),
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&pricing),
            models: &models,
            mc_config: MonteCarloConfig::default(),
        };
        assert!(solve(&ctx, 0.5, &mut Pcg32::seed(1)).is_none());
    }
}
