//! Contingency tables: precomputed ranked fallback plans (robustness
//! against correlated failures).
//!
//! Geospatial shifting concentrates work into the greenest regions,
//! which makes a correlated failure (a provider-wide outage, a shared
//! failure domain) take out exactly the regions the solver piled into.
//! Instead of improvising a re-route home at failure time, the solver
//! precomputes K fallback plan sets alongside the primary — each solved
//! over the plan space *minus* one region or one entire provider — and
//! emits them as a deterministic [`ContingencyTable`] the runtime can
//! switch to instantly.
//!
//! The marginal solve cost is mostly warm [`EstimateCache`] hits: the
//! fallback walks revisit the same `(plan, hour)` keys the primary solve
//! already evaluated, so only candidates unique to the reduced space pay
//! for Monte Carlo. Fallback walk seeds derive from a domain-separated
//! [`SeedSplitter`] chain, so the primary schedule is bit-identical to a
//! contingency-free solve and the whole bundle is bit-identical at any
//! worker count.
//!
//! [`EstimateCache`]: crate::engine::EstimateCache
//! [`SeedSplitter`]: caribou_model::rng::SeedSplitter

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::StageModels;
use caribou_model::plan::{ContingencyEntry, ContingencyTable, Exclusion, HourlyPlans};
use caribou_model::region::{Provider, RegionId};
use caribou_model::rng::{Pcg32, SeedSplitter};

use crate::context::SolverContext;
use crate::engine::EvalEngine;
use crate::hbss::HbssSolver;
use crate::hourly::solve_hourly_with;

/// Domain label separating contingency walk seeds from every other
/// derivation chain in the workspace.
pub const CONTINGENCY_DOMAIN: u64 = 0xca1b_c0a7;

fn exclusion_salt(exclusion: &Exclusion) -> u64 {
    match exclusion {
        Exclusion::Region(r) => r.index() as u64,
        // Disjoint from any region index.
        Exclusion::Provider(p) => 0x1_0000_0000 | p.bit() as u64,
    }
}

/// Solves the primary 24-hour schedule plus up to `k` ranked fallback
/// plan sets.
///
/// The primary solve consumes `rng` exactly as [`solve_hourly_with`]
/// would, so it is byte-identical to a contingency-free run. Fallback
/// candidates are chosen from the primary's own exposure: every
/// non-home provider the primary uses (excluded wholesale) and every
/// non-home region it uses (excluded singly), ranked by assigned
/// node-hours. Each candidate re-solves over `ctx.permitted` minus the
/// excluded regions on a seed derived from
/// `(contingency_seed, CONTINGENCY_DOMAIN, exclusion)`; candidates whose
/// reduced space leaves some node with no permitted region are skipped.
/// Entries come back ranked coverage-first — provider-level exclusions
/// before single regions, ascending objective metric (mean across the
/// 24 hours) within each class — so the runtime's first covering match
/// is the broad fallback whenever one exists.
///
/// `topology` maps each region to its provider (the same pairs handed to
/// `FaultPlan::randomized_correlated`); regions absent from it never
/// form provider-level candidates.
#[allow(clippy::too_many_arguments)]
pub fn solve_hourly_with_contingency<S: CarbonDataSource + Sync, M: StageModels + Sync>(
    engine: &EvalEngine,
    solver: &HbssSolver,
    ctx: &SolverContext<'_, S, M>,
    topology: &[(RegionId, Provider)],
    day_start_hour: f64,
    generated_at_s: f64,
    expires_at_s: f64,
    rng: &mut Pcg32,
    contingency_seed: u64,
    k: usize,
) -> (HourlyPlans, ContingencyTable) {
    let primary = solve_hourly_with(
        engine,
        solver,
        ctx,
        day_start_hour,
        generated_at_s,
        expires_at_s,
        rng,
    );
    if k == 0 {
        return (primary, ContingencyTable::empty());
    }

    // Exposure: node-hours the primary assigns to each region.
    let mut usage: Vec<(RegionId, usize)> = Vec::new();
    for plan in primary.iter() {
        for &r in plan.assignment() {
            match usage.iter_mut().find(|(reg, _)| *reg == r) {
                Some((_, n)) => *n += 1,
                None => usage.push((r, 1)),
            }
        }
    }
    usage.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let provider_of = |r: RegionId| topology.iter().find(|(reg, _)| *reg == r).map(|(_, p)| *p);
    let home_provider = provider_of(ctx.home);

    // Candidates: provider-level exclusions first (they cover the
    // correlated failures a single-region entry cannot), then single
    // regions by descending exposure.
    let mut candidates: Vec<(Exclusion, Vec<RegionId>)> = Vec::new();
    for p in Provider::ALL {
        if Some(p) == home_provider {
            continue;
        }
        let exposed = usage
            .iter()
            .any(|&(r, _)| provider_of(r) == Some(p) && r != ctx.home);
        if !exposed {
            continue;
        }
        let mut excluded: Vec<RegionId> = topology
            .iter()
            .filter(|(_, tp)| *tp == p)
            .map(|(r, _)| *r)
            .collect();
        excluded.sort_unstable();
        candidates.push((Exclusion::Provider(p), excluded));
    }
    for &(r, _) in &usage {
        if r == ctx.home {
            continue;
        }
        candidates.push((Exclusion::Region(r), vec![r]));
    }
    candidates.truncate(k);

    let mut entries: Vec<ContingencyEntry> = Vec::new();
    for (exclusion, excluded) in candidates {
        let permitted: Vec<Vec<RegionId>> = ctx
            .permitted
            .iter()
            .map(|set| {
                set.iter()
                    .copied()
                    .filter(|r| !excluded.contains(r))
                    .collect()
            })
            .collect();
        if permitted.iter().any(|set: &Vec<RegionId>| set.is_empty()) {
            // Some node has nowhere left to run without these regions; a
            // fallback cannot exist.
            continue;
        }
        let fctx = SolverContext {
            dag: ctx.dag,
            profile: ctx.profile,
            permitted: &permitted,
            home: ctx.home,
            objective: ctx.objective,
            tolerances: ctx.tolerances,
            carbon_source: ctx.carbon_source,
            carbon_model: ctx.carbon_model,
            cost_model: ctx.cost_model.clone(),
            models: ctx.models,
            mc_config: ctx.mc_config,
        };
        let mut frng = SeedSplitter::new(contingency_seed)
            .absorb(CONTINGENCY_DOMAIN)
            .absorb(exclusion_salt(&exclusion))
            .rng();
        let plans = solve_hourly_with(
            engine,
            solver,
            &fctx,
            day_start_hour,
            generated_at_s,
            expires_at_s,
            &mut frng,
        );
        // Rank by the mean objective across the day. Every (plan, hour)
        // was just evaluated inside the fallback solve, so these are all
        // cache hits.
        let metric = (0..24)
            .map(|h| {
                let hour = day_start_hour + h as f64 + 0.5;
                ctx.metric_of(&engine.evaluate(ctx, plans.plan_for_hour(h), hour))
            })
            .sum::<f64>()
            / 24.0;
        entries.push(ContingencyEntry {
            exclusion,
            excluded_regions: excluded,
            plans,
            metric,
        });
    }
    // Coverage-first ranking: provider-level entries precede region
    // entries, metric-ascending within each class. A foreign region
    // failing is treated as evidence of a correlated provider event, so
    // the runtime escalates to the broad fallback immediately instead of
    // burning a trip-detect round on each sibling region.
    let class = |e: &ContingencyEntry| match e.exclusion {
        Exclusion::Provider(_) => 0u8,
        Exclusion::Region(_) => 1,
    };
    entries.sort_by(|a, b| {
        class(a)
            .cmp(&class(b))
            .then(
                a.metric
                    .partial_cmp(&b.metric)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then_with(|| a.exclusion.label().cmp(&b.exclusion.label()))
    });
    if caribou_telemetry::is_enabled() {
        caribou_telemetry::count("solver.contingency.entries", entries.len() as u64);
    }
    (primary, ContingencyTable { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
    use caribou_metrics::costmodel::CostModel;
    use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
    use caribou_model::builder::Workflow;
    use caribou_model::constraints::{Objective, Tolerances};
    use caribou_model::dag::WorkflowDag;
    use caribou_model::profile::WorkflowProfile;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::compute::LambdaRuntime;
    use caribou_simcloud::latency::LatencyModel;
    use caribou_simcloud::orchestration::Orchestrator;
    use caribou_simcloud::pricing::PricingCatalog;

    struct World {
        cat: RegionCatalog,
        pricing: PricingCatalog,
        runtime: LambdaRuntime,
        latency: LatencyModel,
        carbon: TableSource,
        dag: WorkflowDag,
        profile: WorkflowProfile,
    }

    /// Multi-cloud world where gcp:us-west1 is always cleanest, aws
    /// us-west-2 second, and home (us-east-1) dirtiest — so the primary
    /// piles into gcp and fallbacks are forced elsewhere.
    fn world() -> World {
        let cat = RegionCatalog::multi_cloud();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        runtime.exec_sigma = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let gcp_west = cat.id_of_qualified(Provider::Gcp, "us-west1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        let mut carbon = TableSource::new();
        for (id, _) in cat.iter() {
            let v = if id == gcp_west {
                30.0
            } else if id == west {
                90.0
            } else {
                380.0
            };
            carbon.insert(id, CarbonSeries::new(0, vec![v; 48]));
        }
        let mut wf = Workflow::new("w", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(caribou_model::dist::DistSpec::Constant { value: 6.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(caribou_model::dist::DistSpec::Constant { value: 6.0 })
            .register();
        wf.invoke(a, b, None);
        let (dag, profile, _) = wf.extract().unwrap();
        World {
            cat,
            pricing,
            runtime,
            latency,
            carbon,
            dag,
            profile,
        }
    }

    fn solve(w: &World, workers: usize, k: usize) -> (HourlyPlans, ContingencyTable, u64, u64) {
        let east = w.cat.id_of("us-east-1").unwrap();
        let gcp_west = w.cat.id_of_qualified(Provider::Gcp, "us-west1").unwrap();
        let west = w.cat.id_of("us-west-2").unwrap();
        let permitted = vec![vec![east, west, gcp_west]; 2];
        let models = DefaultModels {
            profile: &w.profile,
            runtime: &w.runtime,
            latency: &w.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &w.dag,
            profile: &w.profile,
            permitted: &permitted,
            home: east,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 2.0,
                cost: 2.0,
                carbon: f64::INFINITY,
            },
            carbon_source: &w.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&w.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let topology: Vec<(RegionId, Provider)> =
            w.cat.iter().map(|(id, spec)| (id, spec.provider)).collect();
        let engine = EvalEngine::new(99, workers);
        let solver = HbssSolver::new();
        let (primary, table) = solve_hourly_with_contingency(
            &engine,
            &solver,
            &ctx,
            &topology,
            0.0,
            0.0,
            86_400.0,
            &mut Pcg32::seed(1),
            7,
            k,
        );
        (primary, table, engine.hit_count(), engine.miss_count())
    }

    #[test]
    fn primary_is_identical_to_contingency_free_solve() {
        let w = world();
        let (with, _, _, _) = solve(&w, 1, 3);
        let (without, table0, _, _) = solve(&w, 1, 0);
        assert_eq!(with, without);
        assert!(table0.is_empty());
    }

    #[test]
    fn fallbacks_avoid_their_exclusions_and_cover_provider_loss() {
        let w = world();
        let gcp_west = w.cat.id_of_qualified(Provider::Gcp, "us-west1").unwrap();
        let (primary, table, hits, misses) = solve(&w, 1, 3);
        // The cleanest region is gcp — the primary must be exposed to it
        // for the provider candidate to exist at all.
        assert!(primary.regions_used().contains(&gcp_west));
        let gcp_entry = table
            .entries
            .iter()
            .find(|e| e.exclusion == Exclusion::Provider(Provider::Gcp))
            .expect("provider-level fallback present");
        for r in gcp_entry.plans.regions_used() {
            assert!(
                !gcp_entry.excluded_regions.contains(&r),
                "fallback uses excluded region {r:?}"
            );
            assert_ne!(w.cat.spec(r).provider, Provider::Gcp);
        }
        // A provider-wide gcp loss resolves to that entry.
        let down: Vec<RegionId> = w
            .cat
            .iter()
            .filter(|(_, s)| s.provider == Provider::Gcp)
            .map(|(id, _)| id)
            .collect();
        let picked = table.best_for(&down).expect("fallback for gcp loss");
        assert_eq!(picked.exclusion, Exclusion::Provider(Provider::Gcp));
        // Ranking is coverage-first: provider entries lead, and within a
        // class the metric ascends.
        let class = |e: &ContingencyEntry| match e.exclusion {
            Exclusion::Provider(_) => 0u8,
            Exclusion::Region(_) => 1,
        };
        for pair in table.entries.windows(2) {
            assert!(class(&pair[0]) <= class(&pair[1]));
            if class(&pair[0]) == class(&pair[1]) {
                assert!(pair[0].metric <= pair[1].metric);
            }
        }
        // The fallback solves mostly re-walk cached (plan, hour) keys.
        assert!(hits > misses, "hits {hits} vs misses {misses}");
    }

    #[test]
    fn bundle_is_bit_identical_across_worker_counts() {
        let w = world();
        let (p1, t1, _, _) = solve(&w, 1, 3);
        let (p2, t2, _, _) = solve(&w, 2, 3);
        let (p8, t8, _, _) = solve(&w, 8, 3);
        assert_eq!(p1, p2);
        assert_eq!(p1, p8);
        assert_eq!(t1, t2);
        assert_eq!(t1, t8);
    }

    #[test]
    fn k_caps_the_entry_count() {
        let w = world();
        let (_, table, _, _) = solve(&w, 1, 1);
        assert_eq!(table.len(), 1);
        // The single slot goes to the provider-level candidate.
        assert!(matches!(table.entries[0].exclusion, Exclusion::Provider(_)));
    }
}
