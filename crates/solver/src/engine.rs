//! Deterministic parallel evaluation engine with plan-keyed estimate
//! caching.
//!
//! Every candidate evaluation is a *pure function* of the engine's solve
//! seed, the app fingerprint, the plan assignment, and the solve hour:
//! the Monte Carlo RNG is derived by splitting the solve seed through a
//! [`SeedSplitter`] (SplitMix-style) over those labels, never by
//! threading a walk generator through the estimate. Purity buys four
//! properties at once:
//!
//! 1. **Worker-count independence** — no evaluation consumes state
//!    another evaluation produced, so fanning candidates across a
//!    [`pool`] of threads returns bit-identical estimates at 1, 2, or 64
//!    workers.
//! 2. **Cache soundness** — a cached summary is bit-equal to what a
//!    fresh computation would return, so a lookup can replace
//!    [`MonteCarloConfig::batch`]-sized sampling without shifting any
//!    solve result — and bounded eviction can drop any entry without
//!    shifting one either.
//! 3. **Cross-solve sharing** — one engine (and its cache) is safely
//!    shared across HBSS iterations and across the 24 hourly solves,
//!    because the hour is part of both the key and the derived seed.
//! 4. **Cross-app sharing** — a fleet of structurally identical apps can
//!    share one [`EstimateCache`] through per-app engines created with
//!    [`EvalEngine::with_cache`]: the app's structural *fingerprint* is
//!    part of both the key and the derived seed, so two apps only share
//!    an entry when their estimates are provably bit-equal.
//!
//! The cache key is `(fingerprint, assignment, hour-bits)` — the bit
//! pattern of the solve hour. Bucketing is exact rather than floored
//! because carbon sources may be continuous in the hour; two solves only
//! share an entry when their estimates are provably identical.
//!
//! The cache is **bounded**: past [`EstimateCache::capacity`] entries the
//! largest keys are evicted. Because the map is ordered and eviction
//! keeps the smallest `capacity` keys, the retained *set* depends only on
//! which keys were ever inserted — never on insertion order — so a run's
//! cache contents stay worker-count independent, and soundness (property
//! 2) means eviction can only cost recomputation, never correctness.
//!
//! Entries remember which regions their estimate read (the plan's regions
//! plus home, the only regions the Monte Carlo estimator queries the
//! carbon source for). [`EstimateCache::invalidate_hour`] uses that to
//! drop exactly the entries a forecast revision touches — the hook the
//! fleet subsystem's incremental re-solve builds on.
//!
//! Hit/miss/eviction tallies accumulate in atomics (worker threads have
//! no telemetry session of their own) and the coordinating thread
//! publishes the deltas as `solver.cache.hit` / `solver.cache.miss` /
//! `solver.cache.evictions` via [`EvalEngine::flush_telemetry`]. Under
//! parallel misses of the same key the tallies may differ by a few counts
//! between runs — the cached *values* never do.
//!
//! [`MonteCarloConfig::batch`]: caribou_metrics::montecarlo::MonteCarloConfig

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::{EstimateScratch, EstimateSummary, StageModels};
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionId;
use caribou_model::rng::{Pcg32, SeedSplitter};

use crate::context::SolverContext;
use crate::pool;

/// Domain-separation label for evaluation streams, so an engine seed
/// never collides with other subsystems splitting the same master seed.
const EVAL_DOMAIN: u64 = 0xca1b_0e5e_e7a1_0001;

/// Domain-separation label mixed with non-zero provider bits, so a
/// cross-provider evaluation stream never collides with a fingerprint
/// absorb of the same numeric value.
const PROVIDER_DOMAIN: u64 = 0xca1b_0e5e_e7a1_0002;

/// Default [`EstimateCache`] capacity: large enough that single-app
/// solves (24-hour schedules visit a few thousand distinct plans) never
/// evict, small enough to bound a week-long fleet run.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Cache key: `(app fingerprint, provider bits, plan assignment,
/// solve-hour bits)`. Provider bits are 0 for AWS-only plan spaces (the
/// legacy key shape, zero-extended), non-zero when the universe spans
/// providers — so cross-provider estimates can never be served to a
/// single-provider solve or vice versa.
type CacheKey = (u64, u64, Vec<RegionId>, u64);

/// A cached summary plus the regions its estimate read from the carbon
/// source (assignment ∪ home) — the dependency record invalidation uses.
#[derive(Debug, Clone)]
struct CacheEntry {
    summary: EstimateSummary,
    touched: Vec<RegionId>,
}

/// A bounded, shareable estimate cache.
///
/// One cache may back many [`EvalEngine`]s at once (the fleet case); the
/// per-engine fingerprint keeps streams and keys of different app
/// structures apart while letting identical structures share. All
/// operations take `&self`; the map sits behind a [`Mutex`] and the
/// tallies in atomics so worker threads can use it directly.
#[derive(Debug)]
pub struct EstimateCache {
    capacity: usize,
    map: Mutex<BTreeMap<CacheKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    flushed_hits: AtomicU64,
    flushed_misses: AtomicU64,
    flushed_evictions: AtomicU64,
}

impl EstimateCache {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        EstimateCache {
            capacity: capacity.max(1),
            map: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            flushed_hits: AtomicU64::new(0),
            flushed_misses: AtomicU64::new(0),
            flushed_evictions: AtomicU64::new(0),
        }
    }

    /// Creates a shareable cache for cross-engine use.
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(Self::new(capacity))
    }

    /// The entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far (across every engine sharing this cache).
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= distinct evaluations computed, absent races).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound so far.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn get(&self, key: &CacheKey) -> Option<EstimateSummary> {
        let hit = self
            .map
            .lock()
            .expect("cache lock")
            .get(key)
            .map(|e| e.summary);
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: CacheKey, summary: EstimateSummary, touched: Vec<RegionId>) {
        let mut map = self.map.lock().expect("cache lock");
        map.insert(key, CacheEntry { summary, touched });
        // Deterministic eviction: keep the `capacity` smallest keys. The
        // retained set is a pure function of the inserted key set, so it
        // cannot depend on worker count or scheduling.
        while map.len() > self.capacity {
            map.pop_last();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry whose estimate was computed at `hour` *and* read
    /// any of `regions` from the carbon source. Returns the number of
    /// entries dropped.
    ///
    /// This is the forecast-revision hook: after the carbon forecast for
    /// `hour` changes in `regions`, the surviving entries are exactly the
    /// ones whose inputs are untouched, so serving them stays bit-equal
    /// to recomputing against the revised forecast.
    pub fn invalidate_hour(&self, hour: f64, regions: &[RegionId]) -> u64 {
        let bits = hour.to_bits();
        let mut map = self.map.lock().expect("cache lock");
        let before = map.len();
        map.retain(|(_, _, _, h), entry| {
            *h != bits || !entry.touched.iter().any(|r| regions.contains(r))
        });
        (before - map.len()) as u64
    }

    /// Publishes unflushed hit/miss/eviction tallies as
    /// `solver.cache.{hit,miss,evictions}` counters into the calling
    /// thread's telemetry session. Call from the coordinating thread —
    /// workers accumulate, they never record.
    pub fn flush_telemetry(&self) {
        if !caribou_telemetry::is_enabled() {
            return;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let evictions = self.evictions.load(Ordering::Relaxed);
        let dh = hits.saturating_sub(self.flushed_hits.swap(hits, Ordering::Relaxed));
        let dm = misses.saturating_sub(self.flushed_misses.swap(misses, Ordering::Relaxed));
        let de =
            evictions.saturating_sub(self.flushed_evictions.swap(evictions, Ordering::Relaxed));
        if dh > 0 {
            caribou_telemetry::count("solver.cache.hit", dh);
        }
        if dm > 0 {
            caribou_telemetry::count("solver.cache.miss", dm);
        }
        if de > 0 {
            caribou_telemetry::count("solver.cache.evictions", de);
        }
        let total = hits + misses;
        if total > 0 {
            caribou_telemetry::gauge("solver.cache.hit_rate", hits as f64 / total as f64);
        }
    }
}

/// The deterministic parallel evaluation engine.
///
/// One engine instance corresponds to one logical solve (or one solve
/// batch, like a 24-hour plan generation) of one app against one frozen
/// [`SolverContext`] data set. Do **not** reuse an engine after the
/// forecast or profile behind the context changed — unless the stale
/// entries were dropped through [`EstimateCache::invalidate_hour`], the
/// cache would serve estimates of the stale data.
pub struct EvalEngine {
    solve_seed: u64,
    fingerprint: u64,
    provider_bits: u64,
    workers: usize,
    cache: Arc<EstimateCache>,
    /// Pool of estimator scratch buffers (node-state columns, metric
    /// columns, sort buffer). A cache miss checks one out for the
    /// duration of the Monte Carlo estimate and returns it afterwards, so
    /// a solve's misses re-allocate node state only until the pool has
    /// one scratch per concurrently-evaluating worker. Scratch holds no
    /// sample state across estimates, so reuse cannot affect results.
    scratch: Mutex<Vec<EstimateScratch>>,
}

impl EvalEngine {
    /// Creates an engine for one solve, with a private cache.
    ///
    /// `solve_seed` determines every evaluation stream; `workers` caps
    /// the fan-out of [`evaluate_many`](Self::evaluate_many) (1 = fully
    /// sequential, same results).
    pub fn new(solve_seed: u64, workers: usize) -> Self {
        Self::with_cache(
            solve_seed,
            0,
            workers,
            EstimateCache::shared(DEFAULT_CACHE_CAPACITY),
        )
    }

    /// Creates an engine whose evaluations are keyed and seeded by an app
    /// `fingerprint` and stored in a shared `cache`.
    ///
    /// Sharing contract: every engine on one cache must use the same
    /// `solve_seed`, and two engines may use the same `fingerprint` only
    /// when their contexts produce bit-identical estimates for every
    /// `(plan, hour)` — i.e. the fingerprint must commit to the DAG
    /// structure, profile, home region, models, and Monte Carlo config.
    /// Fingerprint 0 is reserved for single-app engines ([`Self::new`]):
    /// it keeps the legacy evaluation streams bit-for-bit.
    pub fn with_cache(
        solve_seed: u64,
        fingerprint: u64,
        workers: usize,
        cache: Arc<EstimateCache>,
    ) -> Self {
        Self::with_cache_providers(solve_seed, fingerprint, 0, workers, cache)
    }

    /// Creates an engine whose plan space spans a specific provider set.
    ///
    /// `provider_bits` is the non-AWS provider mask of the evaluation
    /// universe (see `RegionCatalog::provider_bits`): it is part of both
    /// the cache key and the derived evaluation streams. Bits 0 — the
    /// AWS-only case — reproduces the legacy key shape and streams
    /// bit-for-bit, the same reservation fingerprint 0 makes for
    /// single-app engines.
    pub fn with_cache_providers(
        solve_seed: u64,
        fingerprint: u64,
        provider_bits: u64,
        workers: usize,
        cache: Arc<EstimateCache>,
    ) -> Self {
        EvalEngine {
            solve_seed,
            fingerprint,
            provider_bits,
            workers: workers.max(1),
            cache,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The worker-thread cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The solve seed all evaluation streams derive from.
    pub fn solve_seed(&self) -> u64 {
        self.solve_seed
    }

    /// The app fingerprint (0 for single-app engines).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The non-AWS provider bits of the plan space (0 for AWS-only).
    pub fn provider_bits(&self) -> u64 {
        self.provider_bits
    }

    /// The backing estimate cache.
    pub fn cache(&self) -> &Arc<EstimateCache> {
        &self.cache
    }

    /// The derived generator for one `(plan, hour)` evaluation — a pure
    /// function of the solve seed, the fingerprint, and those labels.
    /// Public so tests can verify cached results against fresh uncached
    /// runs.
    pub fn eval_rng(&self, plan: &DeploymentPlan, hour: f64) -> Pcg32 {
        let mut sp = SeedSplitter::new(self.solve_seed).absorb(EVAL_DOMAIN);
        // Fingerprint 0 (single-app engines) skips the absorb so the
        // pre-fleet evaluation streams — and every seeded golden output
        // derived from them — are preserved bit-for-bit.
        if self.fingerprint != 0 {
            sp = sp.absorb(self.fingerprint);
        }
        // Same reservation for providers: AWS-only plan spaces (bits 0)
        // skip the absorb, keeping pre-multi-provider streams intact.
        if self.provider_bits != 0 {
            sp = sp.absorb(PROVIDER_DOMAIN ^ self.provider_bits);
        }
        sp = sp.absorb(hour.to_bits());
        for r in plan.assignment() {
            sp = sp.absorb(r.index() as u64);
        }
        sp.rng()
    }

    /// Evaluates a plan at an hour through the cache.
    ///
    /// A hit returns the stored summary (bit-equal to recomputing); a
    /// miss runs the Monte Carlo estimate on the derived stream and
    /// stores it. Computation happens outside the lock so concurrent
    /// misses don't serialize; racing workers recompute the same value
    /// and the last insert wins harmlessly.
    pub fn evaluate<S: CarbonDataSource, M: StageModels>(
        &self,
        ctx: &SolverContext<'_, S, M>,
        plan: &DeploymentPlan,
        hour: f64,
    ) -> EstimateSummary {
        let key = (
            self.fingerprint,
            self.provider_bits,
            plan.assignment().to_vec(),
            hour.to_bits(),
        );
        if let Some(hit) = self.cache.get(&key) {
            return hit;
        }
        let mut rng = self.eval_rng(plan, hour);
        let mut scratch = self
            .scratch
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        let estimate = ctx.evaluate_with_scratch(plan, hour, &mut rng, &mut scratch);
        self.scratch.lock().expect("scratch pool").push(scratch);
        // The estimator queries the carbon source only for the plan's
        // regions and home (transmission endpoints and execution sites) —
        // record them so forecast revisions can invalidate precisely.
        let mut touched = plan.regions_used();
        if !touched.contains(&ctx.home) {
            touched.push(ctx.home);
            touched.sort_unstable();
        }
        self.cache.insert(key, estimate, touched);
        estimate
    }

    /// Evaluates a batch of plans at one hour across the worker pool,
    /// returning summaries in plan order. Emits pool statistics and cache
    /// counter deltas into the caller's telemetry session.
    pub fn evaluate_many<S: CarbonDataSource + Sync, M: StageModels + Sync>(
        &self,
        ctx: &SolverContext<'_, S, M>,
        plans: &[DeploymentPlan],
        hour: f64,
    ) -> Vec<EstimateSummary> {
        let (out, stats) = pool::map_indexed(self.workers, plans.len(), |i| {
            self.evaluate(ctx, &plans[i], hour)
        });
        stats.emit();
        self.flush_telemetry();
        out
    }

    /// Cache hits so far (cache-wide when the cache is shared).
    pub fn hit_count(&self) -> u64 {
        self.cache.hit_count()
    }

    /// Cache misses (= distinct evaluations computed, absent races).
    pub fn miss_count(&self) -> u64 {
        self.cache.miss_count()
    }

    /// Distinct `(fingerprint, plan, hour)` entries cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Publishes unflushed cache tallies; see
    /// [`EstimateCache::flush_telemetry`].
    pub fn flush_telemetry(&self) {
        self.cache.flush_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(tag: f64) -> EstimateSummary {
        // Serde round-trip spares the test from spelling out every field
        // of the (Copy, all-pub) summary struct.
        let d = format!("{{\"mean\":{tag},\"p95\":{tag},\"std_dev\":0.0,\"n\":1}}");
        let json = format!(
            "{{\"latency\":{d},\"cost\":{d},\"carbon\":{d},\
             \"exec_carbon_mean\":{tag},\"trans_carbon_mean\":{tag},\"samples\":1}}"
        );
        serde_json::from_str(&json).expect("summary literal deserializes")
    }

    fn key(fp: u64, regions: &[u16], hour: f64) -> CacheKey {
        (
            fp,
            0,
            regions.iter().map(|r| RegionId(*r)).collect(),
            hour.to_bits(),
        )
    }

    #[test]
    fn eviction_keeps_smallest_keys_regardless_of_insertion_order() {
        let keys: Vec<CacheKey> = (0..10u64).map(|i| key(i, &[0, 1], 0.5)).collect();
        let forward = EstimateCache::new(4);
        for k in &keys {
            forward.insert(k.clone(), summary(1.0), vec![RegionId(0)]);
        }
        let backward = EstimateCache::new(4);
        for k in keys.iter().rev() {
            backward.insert(k.clone(), summary(1.0), vec![RegionId(0)]);
        }
        assert_eq!(forward.len(), 4);
        assert_eq!(backward.len(), 4);
        assert_eq!(forward.eviction_count(), 6);
        assert_eq!(backward.eviction_count(), 6);
        // Both orders retain exactly the 4 smallest keys.
        for k in &keys[..4] {
            assert!(forward.get(k).is_some());
            assert!(backward.get(k).is_some());
        }
        for k in &keys[4..] {
            assert!(forward.get(k).is_none());
            assert!(backward.get(k).is_none());
        }
    }

    #[test]
    fn invalidate_hour_drops_only_touched_entries_at_that_hour() {
        let cache = EstimateCache::new(100);
        let r0 = RegionId(0);
        let r1 = RegionId(1);
        let r2 = RegionId(2);
        cache.insert(key(1, &[0], 7.5), summary(1.0), vec![r0, r1]);
        cache.insert(key(1, &[2], 7.5), summary(2.0), vec![r1, r2]);
        cache.insert(key(1, &[0], 8.5), summary(3.0), vec![r0, r1]);
        // Revising region 0 at hour 7.5 touches only the first entry.
        assert_eq!(cache.invalidate_hour(7.5, &[r0]), 1);
        assert!(cache.get(&key(1, &[0], 7.5)).is_none());
        assert!(cache.get(&key(1, &[2], 7.5)).is_some());
        assert!(cache.get(&key(1, &[0], 8.5)).is_some());
        // Revising every region at hour 7.5 clears the rest of that hour.
        assert_eq!(cache.invalidate_hour(7.5, &[r0, r1, r2]), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fingerprints_separate_streams_and_keys() {
        let cache = EstimateCache::shared(100);
        let a = EvalEngine::with_cache(7, 0xaaaa, 1, Arc::clone(&cache));
        let b = EvalEngine::with_cache(7, 0xbbbb, 1, Arc::clone(&cache));
        let same = EvalEngine::with_cache(7, 0xaaaa, 1, Arc::clone(&cache));
        let plan = DeploymentPlan::new(vec![RegionId(0), RegionId(1)]);
        let ra = a.eval_rng(&plan, 0.5).next_u64();
        let rb = b.eval_rng(&plan, 0.5).next_u64();
        let rs = same.eval_rng(&plan, 0.5).next_u64();
        assert_ne!(
            ra, rb,
            "different fingerprints must derive different streams"
        );
        assert_eq!(ra, rs, "equal fingerprints must derive equal streams");
    }

    #[test]
    fn provider_bits_separate_streams_and_preserve_legacy() {
        let cache = EstimateCache::shared(100);
        let legacy = EvalEngine::with_cache(7, 0, 1, Arc::clone(&cache));
        let aws_only = EvalEngine::with_cache_providers(7, 0, 0, 1, Arc::clone(&cache));
        let cross = EvalEngine::with_cache_providers(7, 0, 2, 1, Arc::clone(&cache));
        let plan = DeploymentPlan::new(vec![RegionId(0), RegionId(1)]);
        let rl = legacy.eval_rng(&plan, 0.5).next_u64();
        let ra = aws_only.eval_rng(&plan, 0.5).next_u64();
        let rc = cross.eval_rng(&plan, 0.5).next_u64();
        // Bits 0 reproduces the legacy stream exactly; non-zero bits fork
        // a distinct stream.
        assert_eq!(rl, ra);
        assert_ne!(rl, rc);
        assert_eq!(cross.provider_bits(), 2);
        // And the cache keys diverge too: the same (plan, hour) evaluated
        // under different provider bits occupies different entries.
        cache.insert(
            (0, 0, plan.assignment().to_vec(), 0.5f64.to_bits()),
            summary(1.0),
            vec![RegionId(0)],
        );
        assert!(cache
            .get(&(0, 2, plan.assignment().to_vec(), 0.5f64.to_bits()))
            .is_none());
        assert!(cache
            .get(&(0, 0, plan.assignment().to_vec(), 0.5f64.to_bits()))
            .is_some());
    }
}
