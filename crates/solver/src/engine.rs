//! Deterministic parallel evaluation engine with plan-keyed estimate
//! caching.
//!
//! Every candidate evaluation is a *pure function* of the engine's solve
//! seed, the plan assignment, and the solve hour: the Monte Carlo RNG is
//! derived by splitting the solve seed through a [`SeedSplitter`]
//! (SplitMix-style) over those labels, never by threading a walk
//! generator through the estimate. Purity buys three properties at once:
//!
//! 1. **Worker-count independence** — no evaluation consumes state
//!    another evaluation produced, so fanning candidates across a
//!    [`pool`] of threads returns bit-identical estimates at 1, 2, or 64
//!    workers.
//! 2. **Cache soundness** — a cached summary is bit-equal to what a
//!    fresh computation would return, so a lookup can replace
//!    [`MonteCarloConfig::batch`]-sized sampling without shifting any
//!    solve result.
//! 3. **Cross-solve sharing** — one engine (and its cache) is safely
//!    shared across HBSS iterations and across the 24 hourly solves,
//!    because the hour is part of both the key and the derived seed.
//!
//! The cache key is the plan assignment plus the hour bucket — the bit
//! pattern of the solve hour. Bucketing is exact rather than floored
//! because carbon sources may be continuous in the hour; two solves only
//! share an entry when their estimates are provably identical.
//!
//! Hit/miss tallies accumulate in atomics (worker threads have no
//! telemetry session of their own) and the coordinating thread publishes
//! the deltas as `solver.cache.hit` / `solver.cache.miss` via
//! [`EvalEngine::flush_telemetry`]. Under parallel misses of the same key
//! the tallies may differ by a few counts between runs — the cached
//! *values* never do.
//!
//! [`MonteCarloConfig::batch`]: caribou_metrics::montecarlo::MonteCarloConfig

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::{EstimateSummary, StageModels};
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionId;
use caribou_model::rng::{Pcg32, SeedSplitter};

use crate::context::SolverContext;
use crate::pool;

/// Domain-separation label for evaluation streams, so an engine seed
/// never collides with other subsystems splitting the same master seed.
const EVAL_DOMAIN: u64 = 0xca1b_0e5e_e7a1_0001;

/// The deterministic parallel evaluation engine.
///
/// One engine instance corresponds to one logical solve (or one solve
/// batch, like a 24-hour plan generation) against one frozen
/// [`SolverContext`] data set. Do **not** reuse an engine after the
/// forecast or profile behind the context changed: the cache would serve
/// estimates of the stale data.
pub struct EvalEngine {
    solve_seed: u64,
    workers: usize,
    cache: Mutex<HashMap<(Vec<RegionId>, u64), EstimateSummary>>,
    hits: AtomicU64,
    misses: AtomicU64,
    flushed_hits: AtomicU64,
    flushed_misses: AtomicU64,
}

impl EvalEngine {
    /// Creates an engine for one solve.
    ///
    /// `solve_seed` determines every evaluation stream; `workers` caps
    /// the fan-out of [`evaluate_many`](Self::evaluate_many) (1 = fully
    /// sequential, same results).
    pub fn new(solve_seed: u64, workers: usize) -> Self {
        EvalEngine {
            solve_seed,
            workers: workers.max(1),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            flushed_hits: AtomicU64::new(0),
            flushed_misses: AtomicU64::new(0),
        }
    }

    /// The worker-thread cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The solve seed all evaluation streams derive from.
    pub fn solve_seed(&self) -> u64 {
        self.solve_seed
    }

    /// The derived generator for one `(plan, hour)` evaluation — a pure
    /// function of the solve seed and those labels. Public so tests can
    /// verify cached results against fresh uncached runs.
    pub fn eval_rng(&self, plan: &DeploymentPlan, hour: f64) -> Pcg32 {
        let mut sp = SeedSplitter::new(self.solve_seed)
            .absorb(EVAL_DOMAIN)
            .absorb(hour.to_bits());
        for r in plan.assignment() {
            sp = sp.absorb(r.index() as u64);
        }
        sp.rng()
    }

    /// Evaluates a plan at an hour through the cache.
    ///
    /// A hit returns the stored summary (bit-equal to recomputing); a
    /// miss runs the Monte Carlo estimate on the derived stream and
    /// stores it. Computation happens outside the lock so concurrent
    /// misses don't serialize; racing workers recompute the same value
    /// and the last insert wins harmlessly.
    pub fn evaluate<S: CarbonDataSource, M: StageModels>(
        &self,
        ctx: &SolverContext<'_, S, M>,
        plan: &DeploymentPlan,
        hour: f64,
    ) -> EstimateSummary {
        let key = (plan.assignment().to_vec(), hour.to_bits());
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.eval_rng(plan, hour);
        let estimate = ctx.evaluate(plan, hour, &mut rng);
        self.cache.lock().expect("cache lock").insert(key, estimate);
        estimate
    }

    /// Evaluates a batch of plans at one hour across the worker pool,
    /// returning summaries in plan order. Emits pool statistics and cache
    /// counter deltas into the caller's telemetry session.
    pub fn evaluate_many<S: CarbonDataSource + Sync, M: StageModels + Sync>(
        &self,
        ctx: &SolverContext<'_, S, M>,
        plans: &[DeploymentPlan],
        hour: f64,
    ) -> Vec<EstimateSummary> {
        let (out, stats) = pool::map_indexed(self.workers, plans.len(), |i| {
            self.evaluate(ctx, &plans[i], hour)
        });
        stats.emit();
        self.flush_telemetry();
        out
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= distinct evaluations computed, absent races).
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct `(plan, hour)` entries cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Publishes unflushed hit/miss tallies as `solver.cache.{hit,miss}`
    /// counters into the calling thread's telemetry session. Call from
    /// the coordinating thread — workers accumulate, they never record.
    pub fn flush_telemetry(&self) {
        if !caribou_telemetry::is_enabled() {
            return;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let dh = hits.saturating_sub(self.flushed_hits.swap(hits, Ordering::Relaxed));
        let dm = misses.saturating_sub(self.flushed_misses.swap(misses, Ordering::Relaxed));
        if dh > 0 {
            caribou_telemetry::count("solver.cache.hit", dh);
        }
        if dm > 0 {
            caribou_telemetry::count("solver.cache.miss", dm);
        }
        let total = hits + misses;
        if total > 0 {
            caribou_telemetry::gauge("solver.cache.hit_rate", hits as f64 / total as f64);
        }
    }
}
