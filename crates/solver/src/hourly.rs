//! Hourly plan-set generation (§5.1, §5.2).
//!
//! To capture diurnal carbon patterns, one solve produces 24 plans — one
//! per hour of the coming day — using forecast carbon data. When the
//! carbon budget only affords a daily granularity, a single plan is solved
//! against the day's average intensity and replicated.

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::StageModels;
use caribou_model::plan::{HourlyPlans, PlanGranularity};
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::context::SolverContext;
use crate::engine::EvalEngine;
use crate::hbss::HbssSolver;
use crate::pool;

/// A carbon source that answers every query with the day-average of an
/// underlying source — the signal a daily-granularity solve sees.
pub struct DayAveragedSource<'a, S: CarbonDataSource> {
    inner: &'a S,
    day_start_hour: f64,
}

impl<'a, S: CarbonDataSource> DayAveragedSource<'a, S> {
    /// Wraps `inner`, averaging over the day starting at `day_start_hour`.
    pub fn new(inner: &'a S, day_start_hour: f64) -> Self {
        DayAveragedSource {
            inner,
            day_start_hour,
        }
    }
}

impl<S: CarbonDataSource> CarbonDataSource for DayAveragedSource<'_, S> {
    fn intensity(&self, region: RegionId, _hour: f64) -> f64 {
        self.inner
            .average(region, self.day_start_hour, self.day_start_hour + 24.0)
    }
}

/// Solves 24 hourly plans starting at `day_start_hour` (hours since the
/// epoch) with HBSS.
pub fn solve_hourly<S: CarbonDataSource, M: StageModels>(
    solver: &HbssSolver,
    ctx: &SolverContext<'_, S, M>,
    day_start_hour: f64,
    generated_at_s: f64,
    expires_at_s: f64,
    rng: &mut Pcg32,
) -> HourlyPlans {
    let plans = (0..24)
        .map(|h| {
            let mut hrng = rng.fork(h as u64);
            solver
                .solve(ctx, day_start_hour + h as f64 + 0.5, &mut hrng)
                .best
        })
        .collect();
    HourlyPlans::hourly(plans, generated_at_s, expires_at_s)
}

/// Solves 24 hourly plans through an [`EvalEngine`], fanning the hours
/// across the engine's worker pool.
///
/// The per-hour walk generators are pre-forked from `rng` in hour order —
/// exactly the forks the sequential loop would draw — and every candidate
/// evaluation derives its stream from the engine seed, so the returned
/// schedule is bit-identical at any worker count. The engine's estimate
/// cache is shared across all 24 solves.
pub fn solve_hourly_with<S: CarbonDataSource + Sync, M: StageModels + Sync>(
    engine: &EvalEngine,
    solver: &HbssSolver,
    ctx: &SolverContext<'_, S, M>,
    day_start_hour: f64,
    generated_at_s: f64,
    expires_at_s: f64,
    rng: &mut Pcg32,
) -> HourlyPlans {
    let hrngs: Vec<Pcg32> = (0..24).map(|h| rng.fork(h as u64)).collect();
    let (plans, stats) = pool::map_indexed(engine.workers(), 24, |h| {
        let mut hrng = hrngs[h].clone();
        solver
            .solve_with(engine, ctx, day_start_hour + h as f64 + 0.5, &mut hrng)
            .best
    });
    stats.emit();
    engine.flush_telemetry();
    HourlyPlans::hourly(plans, generated_at_s, expires_at_s)
}

/// Solves one daily plan against day-averaged carbon and replicates it.
pub fn solve_daily<S: CarbonDataSource, M: StageModels>(
    solver: &HbssSolver,
    ctx: &SolverContext<'_, S, M>,
    day_start_hour: f64,
    generated_at_s: f64,
    expires_at_s: f64,
    rng: &mut Pcg32,
) -> HourlyPlans {
    let averaged = DayAveragedSource::new(ctx.carbon_source, day_start_hour);
    let day_ctx = SolverContext {
        dag: ctx.dag,
        profile: ctx.profile,
        permitted: ctx.permitted,
        home: ctx.home,
        objective: ctx.objective,
        tolerances: ctx.tolerances,
        carbon_source: &averaged,
        carbon_model: ctx.carbon_model,
        cost_model: ctx.cost_model.clone(),
        models: ctx.models,
        mc_config: ctx.mc_config,
    };
    let best = solver.solve(&day_ctx, day_start_hour + 12.0, rng).best;
    let mut plans = HourlyPlans::daily(best, generated_at_s, expires_at_s);
    plans.granularity = PlanGranularity::Daily;
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
    use caribou_metrics::costmodel::CostModel;
    use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
    use caribou_model::builder::Workflow;
    use caribou_model::constraints::{Objective, Tolerances};
    use caribou_model::dag::NodeId;
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::compute::LambdaRuntime;
    use caribou_simcloud::latency::LatencyModel;
    use caribou_simcloud::orchestration::Orchestrator;
    use caribou_simcloud::pricing::PricingCatalog;

    #[test]
    fn hourly_plans_follow_diurnal_carbon() {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        runtime.exec_sigma = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        // Two-region world: us-east-1 flat at 380; us-west-2 is cleaner at
        // night (hours 0-11) and dirtier during the day (hours 12-23).
        let mut carbon = TableSource::new();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        for (id, _) in cat.iter() {
            let values: Vec<f64> = (0..24)
                .map(|h| {
                    if id == west {
                        if h < 12 {
                            50.0
                        } else {
                            900.0
                        }
                    } else {
                        380.0
                    }
                })
                .collect();
            carbon.insert(id, CarbonSeries::new(0, values));
        }

        let mut wf = Workflow::new("w", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 6.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 6.0 })
            .register();
        wf.invoke(a, b, None);
        let (dag, profile, _) = wf.extract().unwrap();
        let permitted = vec![vec![east, west], vec![east, west]];
        let models = DefaultModels {
            profile: &profile,
            runtime: &runtime,
            latency: &latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home: east,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 0.8,
                cost: 0.8,
                carbon: f64::INFINITY,
            },
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let solver = HbssSolver::new();
        let plans = solve_hourly(&solver, &ctx, 0.0, 0.0, 86_400.0, &mut Pcg32::seed(1));
        // Night hours offload to the clean west; day hours stay east.
        assert_eq!(plans.plan_for_hour(3).region_of(NodeId(0)), west);
        assert_eq!(plans.plan_for_hour(15).region_of(NodeId(0)), east);
        assert_eq!(plans.granularity, PlanGranularity::Hourly);

        // Engine-backed solve: same diurnal structure, and the schedule
        // must be bit-identical no matter how many workers fan it out.
        let schedule_at = |workers: usize| {
            let engine = EvalEngine::new(99, workers);
            let plans = solve_hourly_with(
                &engine,
                &solver,
                &ctx,
                0.0,
                0.0,
                86_400.0,
                &mut Pcg32::seed(1),
            );
            assert!(engine.hit_count() > 0, "cache never hit");
            plans
        };
        let w1 = schedule_at(1);
        let w4 = schedule_at(4);
        assert_eq!(w1, w4);
        assert_eq!(w1.plan_for_hour(3).region_of(NodeId(0)), west);
        assert_eq!(w1.plan_for_hour(15).region_of(NodeId(0)), east);
    }

    #[test]
    fn daily_plan_replicates_single_solution() {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, _) in cat.iter() {
            carbon.insert(id, CarbonSeries::new(0, vec![200.0; 24]));
        }
        let mut wf = Workflow::new("w", "0.1");
        wf.serverless_function("A").register();
        let (dag, profile, _) = wf.extract().unwrap();
        let east = cat.id_of("us-east-1").unwrap();
        let permitted = vec![cat.evaluation_regions()];
        let models = DefaultModels {
            profile: &profile,
            runtime: &runtime,
            latency: &latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home: east,
            objective: Objective::Carbon,
            tolerances: Tolerances::default(),
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let solver = HbssSolver::new();
        let plans = solve_daily(&solver, &ctx, 0.0, 5.0, 10.0, &mut Pcg32::seed(1));
        assert_eq!(plans.granularity, PlanGranularity::Daily);
        let first = plans.plan_for_hour(0).clone();
        for h in 1..24 {
            assert_eq!(*plans.plan_for_hour(h), first);
        }
        assert_eq!(plans.generated_at, 5.0);
        assert_eq!(plans.expires_at, 10.0);
    }
}
