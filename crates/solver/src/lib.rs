//! Deployment-plan solvers (§5.1).
//!
//! The Deployment Solver searches the `|R|^|N|` space of node-to-region
//! assignments for the plan optimizing the developer's objective subject
//! to QoS tolerances. Three solvers are provided:
//!
//! * [`hbss`] — the paper's Heuristic-Biased Stochastic Sampling
//!   (Alg. 1): biased mutation toward low-carbon regions, simulated-
//!   annealing-style acceptance with decaying temperature;
//! * [`exhaustive`] — exact enumeration for small instances, used as the
//!   ground truth in correctness tests and ablations;
//! * [`coarse`] — the `O(|R|)` single-region baseline ("limit the
//!   deployment of all DAG nodes to the same region"), the strategy the
//!   paper shows to be globally suboptimal (§5.1, §9.2 I1).
//!
//! [`hourly`] layers 24-plan generation on top of any solver (§5.1: "24
//! plans are generated per solve — one for each hour, given sufficient
//! carbon budget").
//!
//! [`engine`] provides the deterministic parallel evaluation layer all
//! three solvers can route through: seed-split per-candidate RNG streams,
//! a plan-keyed estimate cache, and a scoped [`pool`] of worker threads —
//! with solve results bit-identical at any worker count.

pub mod coarse;
pub mod context;
pub mod contingency;
pub mod engine;
pub mod exhaustive;
pub mod hbss;
pub mod hourly;
pub mod pool;

pub use context::{SolveOutcome, SolverContext};
pub use engine::EvalEngine;
pub use hbss::{HbssParams, HbssSolver};
