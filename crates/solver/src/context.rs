//! Shared solver context: evaluation, feasibility, and result types.

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::carbonmodel::CarbonModel;
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{
    EstimateScratch, EstimateSummary, MonteCarloConfig, MonteCarloEstimator, StageModels,
};
use caribou_model::constraints::{Objective, Tolerances};
use caribou_model::dag::WorkflowDag;
use caribou_model::plan::DeploymentPlan;
use caribou_model::profile::WorkflowProfile;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

/// Everything a solver needs to evaluate candidate deployments.
pub struct SolverContext<'a, S: CarbonDataSource, M: StageModels> {
    /// Workflow DAG.
    pub dag: &'a WorkflowDag,
    /// Workload profile (possibly refreshed from logs).
    pub profile: &'a WorkflowProfile,
    /// Permitted regions per node, already narrowed by constraints (§8).
    pub permitted: &'a [Vec<RegionId>],
    /// Home region: baseline, fallback, and client/external-data anchor.
    pub home: RegionId,
    /// Optimization priority.
    pub objective: Objective,
    /// QoS tolerances versus the home-region deployment.
    pub tolerances: Tolerances,
    /// Carbon data (the solver receives *forecast* data in production).
    pub carbon_source: &'a S,
    /// Carbon model with the transmission scenario.
    pub carbon_model: CarbonModel,
    /// Cost model.
    pub cost_model: CostModel<'a>,
    /// Stage behaviour models (learned or model-based).
    pub models: &'a M,
    /// Monte Carlo stopping rule.
    pub mc_config: MonteCarloConfig,
}

/// A solver's result.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The best feasible plan found (the home plan when nothing beats it).
    pub best: DeploymentPlan,
    /// Estimate of the best plan.
    pub best_estimate: EstimateSummary,
    /// Estimate of the home-region baseline.
    pub home_estimate: EstimateSummary,
    /// Distinct candidate plans evaluated.
    pub evaluated: usize,
    /// All feasible `(plan, objective-mean)` pairs discovered, best first.
    pub feasible: Vec<(DeploymentPlan, f64)>,
}

impl<S: CarbonDataSource, M: StageModels> SolverContext<'_, S, M> {
    /// Evaluates a plan at an hour.
    pub fn evaluate(&self, plan: &DeploymentPlan, hour: f64, rng: &mut Pcg32) -> EstimateSummary {
        let mut scratch = EstimateScratch::new();
        self.evaluate_with_scratch(plan, hour, rng, &mut scratch)
    }

    /// Evaluates a plan at an hour, reusing caller-owned estimator
    /// scratch. Bit-identical to [`SolverContext::evaluate`]; the
    /// [`EvalEngine`](crate::engine::EvalEngine) pools scratch per worker
    /// so cache misses stop re-allocating node-state columns.
    pub fn evaluate_with_scratch(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        scratch: &mut EstimateScratch,
    ) -> EstimateSummary {
        let est = MonteCarloEstimator {
            dag: self.dag,
            profile: self.profile,
            carbon_source: self.carbon_source,
            carbon_model: self.carbon_model,
            cost_model: self.cost_model.clone(),
            models: self.models,
            home: self.home,
            config: self.mc_config,
        };
        est.estimate_with(plan, hour, rng, scratch)
    }

    /// The home-region uniform plan.
    pub fn home_plan(&self) -> DeploymentPlan {
        DeploymentPlan::uniform(self.dag.node_count(), self.home)
    }

    /// Whether a candidate violates the QoS tolerances versus the home
    /// baseline: tail (p95) latency/cost/carbon must stay within
    /// `home × (1 + tolerance)` (§7.1: "the 95th percentile is the 'tail
    /// case' used to determine tolerance violations").
    pub fn violates_tolerance(&self, candidate: &EstimateSummary, home: &EstimateSummary) -> bool {
        let over = |cand: f64, base: f64, tol: f64| -> bool {
            tol.is_finite() && cand > base * (1.0 + tol) + 1e-12
        };
        over(
            candidate.latency.p95,
            home.latency.p95,
            self.tolerances.latency,
        ) || over(candidate.cost.p95, home.cost.p95, self.tolerances.cost)
            || over(
                candidate.carbon.p95,
                home.carbon.p95,
                self.tolerances.carbon,
            )
    }

    /// The scalar metric a plan is ordered by ("the mean represents the
    /// 'average case' used for DP ordering", §7.1).
    pub fn metric_of(&self, estimate: &EstimateSummary) -> f64 {
        estimate.mean_of(self.objective)
    }

    /// Total size of the search space `|R|^|N|` (clamped to `usize::MAX`).
    pub fn search_space_size(&self) -> usize {
        let mut total: usize = 1;
        for set in self.permitted {
            total = total.saturating_mul(set.len().max(1));
        }
        total
    }
}
