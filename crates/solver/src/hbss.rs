//! Heuristic-Biased Stochastic Sampling (Alg. 1 of the paper).
//!
//! Starting from the home-region deployment, HBSS repeatedly generates
//! neighbour deployments by re-assigning a few nodes, biased toward
//! low-carbon regions; accepts improvements outright and worse candidates
//! with a probability that shrinks with the gap and a decaying temperature
//! γ (×0.99 per acceptance); and terminates after `α = |N| · |R| · 6`
//! iterations or once the whole search space has been enumerated.
//!
//! One adaptation versus the paper's pseudo-code: the acceptance gap
//! `Δ = γ · |CD.metric − ND.metric|` is computed on the *relative* metric
//! difference scaled by [`HbssParams::mutation_scale`]. The paper's
//! absolute form is unit-dependent (carbon per invocation is milligrams,
//! so `e^{-Δ} ≈ 1` and the walk would accept everything); the relative
//! form preserves the intended behaviour across metrics.

use std::collections::HashSet;

use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::montecarlo::StageModels;
use caribou_model::dag::NodeId;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::context::{SolveOutcome, SolverContext};
use crate::engine::EvalEngine;

/// HBSS hyper-parameters (Alg. 1; "determined empirically").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbssParams {
    /// Iteration budget multiplier: `α = |N| · |R| · alpha_factor`.
    pub alpha_factor: usize,
    /// Rank-bias β of the region-selection heuristic.
    pub beta: f64,
    /// Initial temperature γ.
    pub gamma: f64,
    /// Temperature decay per acceptance.
    pub gamma_decay: f64,
    /// Scale applied to the relative metric gap in the stochastic
    /// mutation acceptance.
    pub mutation_scale: f64,
    /// Hard cap on iterations regardless of DAG/region count, mirroring
    /// the dynamic adjustment to AWS Lambda's 900 s limit (§5.1).
    pub max_iterations: usize,
}

impl Default for HbssParams {
    fn default() -> Self {
        HbssParams {
            alpha_factor: 6,
            beta: 0.2,
            gamma: 1.0,
            gamma_decay: 0.99,
            mutation_scale: 20.0,
            max_iterations: 5_000,
        }
    }
}

/// The HBSS deployment solver.
#[derive(Debug, Clone, Default)]
pub struct HbssSolver {
    /// Hyper-parameters.
    pub params: HbssParams,
}

impl HbssSolver {
    /// Creates a solver with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs HBSS for the deployment at a given hour.
    pub fn solve<S: CarbonDataSource, M: StageModels>(
        &self,
        ctx: &SolverContext<'_, S, M>,
        hour: f64,
        rng: &mut Pcg32,
    ) -> SolveOutcome {
        self.solve_impl(ctx, hour, rng, None)
    }

    /// Runs HBSS with evaluations routed through an [`EvalEngine`]: each
    /// candidate's Monte Carlo stream derives from the engine's solve
    /// seed instead of consuming the walk generator, and repeated
    /// candidates are cache lookups.
    ///
    /// Two behavioural differences from [`solve`](Self::solve): duplicate
    /// candidates re-enter the acceptance step (closer to the paper's
    /// Alg. 1, which has no dedup — affordable now that re-evaluation is
    /// a lookup), and the result depends only on `(params, ctx, hour,
    /// rng seed, engine seed)` — never on the engine's worker count.
    pub fn solve_with<S: CarbonDataSource, M: StageModels>(
        &self,
        engine: &EvalEngine,
        ctx: &SolverContext<'_, S, M>,
        hour: f64,
        rng: &mut Pcg32,
    ) -> SolveOutcome {
        self.solve_impl(ctx, hour, rng, Some(engine))
    }

    fn solve_impl<S: CarbonDataSource, M: StageModels>(
        &self,
        ctx: &SolverContext<'_, S, M>,
        hour: f64,
        rng: &mut Pcg32,
        engine: Option<&EvalEngine>,
    ) -> SolveOutcome {
        let telemetry = caribou_telemetry::is_enabled();
        let _solve_span = telemetry.then(|| caribou_telemetry::wall_span("solver", "hbss.solve"));
        let p = &self.params;
        let n_nodes = ctx.dag.node_count();
        let n_regions = ctx
            .permitted
            .iter()
            .flat_map(|s| s.iter())
            .collect::<HashSet<_>>()
            .len();
        let alpha = (n_nodes * n_regions * p.alpha_factor).min(p.max_iterations);
        let space = ctx.search_space_size();

        // Region bias: rank permitted regions per node ascending by the
        // forecast carbon intensity at this hour; HBSS samples ranks with
        // geometric weights (the "heuristic bias").
        let ranked: Vec<Vec<RegionId>> = ctx
            .permitted
            .iter()
            .map(|set| {
                let mut v = set.clone();
                v.sort_by(|a, b| {
                    ctx.carbon_source
                        .intensity(*a, hour)
                        .total_cmp(&ctx.carbon_source.intensity(*b, hour))
                });
                v
            })
            .collect();

        let home_plan = ctx.home_plan();
        let home_estimate = match engine {
            Some(e) => e.evaluate(ctx, &home_plan, hour),
            None => ctx.evaluate(&home_plan, hour, rng),
        };
        let mut current_plan = home_plan.clone();
        let mut current_metric = ctx.metric_of(&home_estimate);
        let mut gamma = p.gamma;

        let mut seen: HashSet<Vec<RegionId>> = HashSet::new();
        seen.insert(home_plan.assignment().to_vec());
        let mut evaluated = 1usize;
        let mut feasible: Vec<(DeploymentPlan, f64)> = vec![(home_plan.clone(), current_metric)];
        let mut best_plan = home_plan.clone();
        let mut best_metric = current_metric;
        let mut best_estimate = home_estimate;

        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut i = 0usize;
        while i < alpha {
            let nd = self.gen_new_deployment(&current_plan, &ranked, p.beta, rng);
            i += 1;
            let first_visit = seen.insert(nd.assignment().to_vec());
            // Without an engine, re-evaluating a duplicate would burn a
            // full Monte Carlo run; with one it's a cache hit, so the
            // duplicate re-enters acceptance like in the paper's Alg. 1.
            if !first_visit && engine.is_none() {
                continue;
            }
            let estimate = match engine {
                Some(e) => e.evaluate(ctx, &nd, hour),
                None => ctx.evaluate(&nd, hour, rng),
            };
            if first_visit {
                evaluated += 1;
            }
            if ctx.violates_tolerance(&estimate, &home_estimate) {
                if telemetry && first_visit {
                    caribou_telemetry::count("solver.infeasible", 1);
                }
                continue;
            }
            let metric = ctx.metric_of(&estimate);
            if first_visit {
                feasible.push((nd.clone(), metric));
                if metric < best_metric {
                    best_metric = metric;
                    best_plan = nd.clone();
                    best_estimate = estimate;
                }
            }
            let accept = metric < current_metric
                || self.stochastic_mutation(gamma, current_metric, metric, p.mutation_scale, rng);
            if accept {
                accepted += 1;
                current_plan = nd;
                current_metric = metric;
                gamma *= p.gamma_decay;
                if telemetry {
                    // The temperature trajectory: one point per acceptance.
                    caribou_telemetry::event("solver.accept", format!("h{}", hour as u64), gamma);
                }
            } else {
                rejected += 1;
            }
            if seen.len() >= space {
                break;
            }
        }
        if telemetry {
            caribou_telemetry::count("solver.iterations", i as u64);
            caribou_telemetry::count("solver.accepted", accepted);
            caribou_telemetry::count("solver.rejected", rejected);
            caribou_telemetry::count("solver.evaluated", evaluated as u64);
            caribou_telemetry::gauge("solver.gamma", gamma);
            caribou_telemetry::event("solver.solve", format!("h{}", hour as u64), i as f64);
        }
        if let Some(e) = engine {
            e.flush_telemetry();
        }

        feasible.sort_by(|a, b| a.1.total_cmp(&b.1));
        SolveOutcome {
            best: best_plan,
            best_estimate,
            home_estimate,
            evaluated,
            feasible,
        }
    }

    /// `GenNewDeplWBias`: mutates one or two nodes of the current plan,
    /// choosing replacement regions rank-biased toward low carbon.
    fn gen_new_deployment(
        &self,
        current: &DeploymentPlan,
        ranked: &[Vec<RegionId>],
        beta: f64,
        rng: &mut Pcg32,
    ) -> DeploymentPlan {
        let mut nd = current.clone();
        let n = current.len();
        let mutations = if n > 1 && rng.chance(0.3) { 2 } else { 1 };
        for _ in 0..mutations {
            let node = rng.next_index(n);
            let choices = &ranked[node];
            if choices.len() <= 1 {
                continue;
            }
            // Geometric rank weights w_r = β(1-β)^r — Bresina's
            // bias-rank sampling.
            let weights: Vec<f64> = (0..choices.len())
                .map(|r| beta * (1.0 - beta).powi(r as i32))
                .collect();
            let pick = rng
                .choose_weighted(&weights)
                .expect("non-empty positive weights");
            nd.set(NodeId(node as u32), choices[pick]);
        }
        nd
    }

    /// `MUT`: accepts a worse candidate with probability `e^{-Δ}` where
    /// `Δ = γ · |rel gap| · mutation_scale`.
    fn stochastic_mutation(
        &self,
        gamma: f64,
        current: f64,
        candidate: f64,
        scale: f64,
        rng: &mut Pcg32,
    ) -> bool {
        let denom = current.abs().max(1e-30);
        let delta = gamma * ((current - candidate).abs() / denom) * scale;
        rng.next_f64() < (-delta).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
    use caribou_metrics::costmodel::CostModel;
    use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
    use caribou_model::builder::Workflow;
    use caribou_model::constraints::{Objective, Tolerances};
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::compute::LambdaRuntime;
    use caribou_simcloud::latency::LatencyModel;
    use caribou_simcloud::orchestration::Orchestrator;
    use caribou_simcloud::pricing::PricingCatalog;

    struct Fx {
        cat: RegionCatalog,
        pricing: PricingCatalog,
        runtime: LambdaRuntime,
        latency: LatencyModel,
        carbon: TableSource,
    }

    fn fx() -> Fx {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, spec) in cat.iter() {
            let v = match spec.name.as_str() {
                "us-east-1" | "us-east-2" => 380.0,
                "us-west-1" => 360.0,
                "us-west-2" => 370.0,
                "ca-central-1" => 32.0,
                _ => 400.0,
            };
            carbon.insert(id, CarbonSeries::new(0, vec![v; 24]));
        }
        Fx {
            cat,
            pricing,
            runtime,
            latency,
            carbon,
        }
    }

    fn compute_heavy_workflow() -> (caribou_model::WorkflowDag, caribou_model::WorkflowProfile) {
        let mut wf = Workflow::new("heavy", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 5.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 10.0 })
            .register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 50_000.0 });
        wf.set_input(DistSpec::Constant { value: 10_000.0 });
        let (dag, profile, _) = wf.extract().unwrap();
        (dag, profile)
    }

    #[test]
    fn hbss_offloads_compute_heavy_workflow_to_clean_region() {
        let fx = fx();
        let (dag, profile) = compute_heavy_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let ca = fx.cat.id_of("ca-central-1").unwrap();
        let universe = fx.cat.evaluation_regions();
        let permitted: Vec<Vec<_>> = vec![universe.clone(); 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 0.5, // generous: compute-heavy, latency-tolerant
                cost: 0.5,
                carbon: f64::INFINITY,
            },
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 400,
                cv_threshold: 0.05,
            },
        };
        let outcome = HbssSolver::new().solve(&ctx, 0.5, &mut Pcg32::seed(1));
        // ca-central-1 is ~12x cleaner; a 15 s compute-heavy workflow with
        // tiny payloads must end up there.
        assert_eq!(outcome.best.region_of(NodeId(0)), ca);
        assert_eq!(outcome.best.region_of(NodeId(1)), ca);
        assert!(
            outcome.best_estimate.carbon.mean < outcome.home_estimate.carbon.mean * 0.3,
            "best {} home {}",
            outcome.best_estimate.carbon.mean,
            outcome.home_estimate.carbon.mean
        );
    }

    #[test]
    fn tight_latency_tolerance_keeps_home() {
        let fx = fx();
        let (dag, profile) = compute_heavy_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let universe = fx.cat.evaluation_regions();
        let permitted: Vec<Vec<_>> = vec![universe; 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 0.0,
                cost: 0.0,
                carbon: f64::INFINITY,
            },
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 400,
                cv_threshold: 0.05,
            },
        };
        let outcome = HbssSolver::new().solve(&ctx, 0.5, &mut Pcg32::seed(2));
        // Zero tolerance on latency and cost: nothing beats home (offload
        // adds cross-region latency and cost premium); the solver must
        // fall back to the home deployment.
        assert!(outcome.best.is_single_region());
        assert_eq!(outcome.best.region_of(NodeId(0)), home);
    }

    #[test]
    fn deterministic_given_seed() {
        let fx = fx();
        let (dag, profile) = compute_heavy_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let universe = fx.cat.evaluation_regions();
        let permitted: Vec<Vec<_>> = vec![universe; 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let make_ctx = || SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances::default(),
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let a = HbssSolver::new().solve(&make_ctx(), 0.5, &mut Pcg32::seed(9));
        let b = HbssSolver::new().solve(&make_ctx(), 0.5, &mut Pcg32::seed(9));
        assert_eq!(a.best.assignment(), b.best.assignment());
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    fn respects_permitted_regions() {
        let fx = fx();
        let (dag, profile) = compute_heavy_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let usw2 = fx.cat.id_of("us-west-2").unwrap();
        // Node 0 pinned to home; node 1 may go to us-west-2 only.
        let permitted = vec![vec![home], vec![home, usw2]];
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 1.0,
                cost: 1.0,
                carbon: f64::INFINITY,
            },
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let outcome = HbssSolver::new().solve(&ctx, 0.5, &mut Pcg32::seed(3));
        assert_eq!(outcome.best.region_of(NodeId(0)), home);
        let r1 = outcome.best.region_of(NodeId(1));
        assert!(r1 == home || r1 == usw2);
        // Small search space (2 plans) is fully enumerated.
        assert!(outcome.evaluated <= 2);
    }

    #[test]
    fn feasible_list_sorted_best_first() {
        let fx = fx();
        let (dag, profile) = compute_heavy_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let universe = fx.cat.evaluation_regions();
        let permitted: Vec<Vec<_>> = vec![universe; 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 0.5,
                cost: 0.5,
                carbon: f64::INFINITY,
            },
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 100,
                max_samples: 200,
                cv_threshold: 0.05,
            },
        };
        let outcome = HbssSolver::new().solve(&ctx, 0.5, &mut Pcg32::seed(4));
        assert!(outcome.feasible.len() >= 2);
        for w in outcome.feasible.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(
            outcome.feasible[0].0.assignment(),
            outcome.best.assignment()
        );
    }
}
