//! Property-based tests for the deployment solvers.

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::builder::Workflow;
use caribou_model::constraints::{Objective, Tolerances};
use caribou_model::dist::DistSpec;
use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::LambdaRuntime;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::pricing::PricingCatalog;
use caribou_solver::coarse;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use proptest::prelude::*;

struct Fx {
    cat: RegionCatalog,
    pricing: PricingCatalog,
    runtime: LambdaRuntime,
    latency: LatencyModel,
    carbon: TableSource,
}

fn fixture(seed: u64) -> Fx {
    let cat = RegionCatalog::aws_default();
    let pricing = PricingCatalog::aws_default(&cat);
    let mut runtime = LambdaRuntime::aws_default(&cat);
    runtime.cold_start_prob = 0.0;
    let latency = LatencyModel::from_catalog(&cat);
    let mut rng = Pcg32::seed(seed);
    let mut carbon = TableSource::new();
    for (id, _) in cat.iter() {
        let base = rng.uniform(20.0, 600.0);
        carbon.insert(id, CarbonSeries::new(0, vec![base; 24]));
    }
    Fx {
        cat,
        pricing,
        runtime,
        latency,
        carbon,
    }
}

fn random_chain(
    seed: u64,
    n: usize,
) -> (caribou_model::WorkflowDag, caribou_model::WorkflowProfile) {
    let mut rng = Pcg32::seed(seed);
    let mut wf = Workflow::new("chain", "0.1");
    let mut prev = None;
    for i in 0..n {
        let h = wf
            .serverless_function(format!("s{i}"))
            .exec_time(DistSpec::Constant {
                value: rng.uniform(0.5, 8.0),
            })
            .memory_mb([512, 1024, 1769][rng.next_index(3)])
            .register();
        if let Some(p) = prev {
            wf.invoke(p, h, None).payload(DistSpec::Constant {
                value: rng.uniform(1e3, 1e6),
            });
        }
        prev = Some(h);
    }
    let (dag, profile, _) = wf.extract().unwrap();
    (dag, profile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any random world and chain workflow: the HBSS best plan only
    /// uses permitted regions, never scores worse than the home plan, and
    /// the feasible list is sorted.
    #[test]
    fn hbss_respects_feasibility_and_never_regresses(seed in any::<u64>(), n in 1usize..4) {
        let fx = fixture(seed);
        let (dag, profile) = random_chain(seed, n);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let mut rng = Pcg32::seed(seed ^ 0x11);
        // Random permitted subsets (home always included by construction).
        let universe = fx.cat.evaluation_regions();
        let permitted: Vec<Vec<RegionId>> = (0..n)
            .map(|_| {
                let mut set: Vec<RegionId> = universe
                    .iter()
                    .copied()
                    .filter(|_| rng.chance(0.7))
                    .collect();
                if !set.contains(&home) {
                    set.push(home);
                }
                set.sort_unstable();
                set
            })
            .collect();
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances {
                latency: 0.3,
                cost: 1.0,
                carbon: f64::INFINITY,
            },
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 40,
                max_samples: 80,
                cv_threshold: 0.15,
            },
        };
        let outcome = HbssSolver::new().solve(&ctx, 0.5, &mut Pcg32::seed(seed ^ 0x22));
        for node in dag.all_nodes() {
            prop_assert!(
                permitted[node.index()].contains(&outcome.best.region_of(node)),
                "node {node} placed outside its permitted set"
            );
        }
        // The home plan is always in the feasible set, so the best metric
        // never exceeds the home metric (same-seed evaluation noise aside,
        // the best is selected as the minimum of a set containing home).
        prop_assert!(
            ctx.metric_of(&outcome.best_estimate) <= ctx.metric_of(&outcome.home_estimate) + 1e-12
        );
        for w in outcome.feasible.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Coarse solving with a single permitted region returns the home plan.
    #[test]
    fn coarse_degenerate_region_set(seed in any::<u64>()) {
        let fx = fixture(seed);
        let (dag, profile) = random_chain(seed, 2);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let permitted = vec![vec![home]; 2];
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &dag,
            profile: &profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: Tolerances::default(),
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            mc_config: MonteCarloConfig {
                batch: 40,
                max_samples: 80,
                cv_threshold: 0.15,
            },
        };
        let outcome = coarse::solve(&ctx, 0.5, &mut Pcg32::seed(seed));
        prop_assert!(outcome.best.is_single_region());
        prop_assert_eq!(outcome.best.region_of(caribou_model::dag::NodeId(0)), home);
        prop_assert_eq!(outcome.evaluated, 1);
    }
}
