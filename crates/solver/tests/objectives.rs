//! Objective-priority coverage: the developer's choice between carbon,
//! cost, and latency (§8) changes which deployment wins.

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::builder::Workflow;
use caribou_model::constraints::{Objective, Tolerances};
use caribou_model::dag::NodeId;
use caribou_model::dist::DistSpec;
use caribou_model::region::RegionCatalog;
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::LambdaRuntime;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::pricing::PricingCatalog;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;

struct Fx {
    cat: RegionCatalog,
    pricing: PricingCatalog,
    runtime: LambdaRuntime,
    latency: LatencyModel,
    carbon: TableSource,
}

/// A world where the clean region is expensive and slow, so each objective
/// points somewhere different: carbon → ca-central-1 (clean, pricey,
/// far), cost → us-east-1 (cheap), latency → us-east-1 (home, no hops).
fn fx() -> Fx {
    let cat = RegionCatalog::aws_default();
    let mut pricing = PricingCatalog::aws_default(&cat);
    let mut runtime = LambdaRuntime::aws_default(&cat);
    runtime.cold_start_prob = 0.0;
    runtime.exec_sigma = 0.0;
    let latency = LatencyModel::from_catalog(&cat);
    let mut carbon = TableSource::new();
    for (id, spec) in cat.iter() {
        let v = match spec.name.as_str() {
            "ca-central-1" => 30.0,
            _ => 380.0,
        };
        carbon.insert(id, CarbonSeries::new(0, vec![v; 24]));
    }
    // Make the clean region markedly more expensive than home.
    let ca = cat.id_of("ca-central-1").unwrap();
    let base = pricing.region(ca).clone();
    let inflated = caribou_simcloud::pricing::RegionPricing {
        lambda_gb_second: base.lambda_gb_second * 2.0,
        ..base
    };
    pricing.set_region(ca, inflated);
    Fx {
        cat,
        pricing,
        runtime,
        latency,
        carbon,
    }
}

fn chain(fx: &Fx) -> (caribou_model::WorkflowDag, caribou_model::WorkflowProfile) {
    let _ = fx;
    let mut wf = Workflow::new("c", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 4.0 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Constant { value: 8.0 })
        .register();
    wf.invoke(a, b, None)
        .payload(DistSpec::Constant { value: 20_000.0 });
    let (dag, profile, _) = wf.extract().unwrap();
    (dag, profile)
}

fn solve_with(objective: Objective, seed: u64) -> caribou_model::plan::DeploymentPlan {
    let fx = fx();
    let (dag, profile) = chain(&fx);
    let home = fx.cat.id_of("us-east-1").unwrap();
    let universe = fx.cat.evaluation_regions();
    let permitted = vec![universe; 2];
    let models = DefaultModels {
        profile: &profile,
        runtime: &fx.runtime,
        latency: &fx.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &dag,
        profile: &profile,
        permitted: &permitted,
        home,
        objective,
        tolerances: Tolerances {
            latency: 0.5,
            cost: 2.0,
            carbon: f64::INFINITY,
        },
        carbon_source: &fx.carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&fx.pricing),
        models: &models,
        mc_config: MonteCarloConfig {
            batch: 100,
            max_samples: 400,
            cv_threshold: 0.05,
        },
    };
    HbssSolver::new()
        .solve(&ctx, 0.5, &mut Pcg32::seed(seed))
        .best
}

#[test]
fn carbon_objective_chases_the_clean_grid() {
    let fx = fx();
    let ca = fx.cat.id_of("ca-central-1").unwrap();
    let plan = solve_with(Objective::Carbon, 1);
    assert_eq!(plan.region_of(NodeId(0)), ca);
    assert_eq!(plan.region_of(NodeId(1)), ca);
}

#[test]
fn cost_objective_avoids_the_expensive_clean_region() {
    let fx = fx();
    let ca = fx.cat.id_of("ca-central-1").unwrap();
    let plan = solve_with(Objective::Cost, 2);
    assert_ne!(plan.region_of(NodeId(0)), ca);
    assert_ne!(plan.region_of(NodeId(1)), ca);
}

#[test]
fn latency_objective_stays_home() {
    let fx = fx();
    let home = fx.cat.id_of("us-east-1").unwrap();
    let plan = solve_with(Objective::Latency, 3);
    // Any cross-region hop adds latency; home is optimal.
    assert!(plan.is_single_region());
    assert_eq!(plan.region_of(NodeId(0)), home);
}
