//! Monte Carlo estimator micro-benchmarks (§7.1).
//!
//! Measures the end-to-end estimation cost per workload and the effect of
//! the batch-size/CV stopping-rule parameters — the design choice behind
//! the paper's "batches of 200 until CV < 0.05 or 2,000 samples". The Go
//! re-implementation's 2x speedup motivated exactly this hot loop; this
//! Rust implementation is the equivalent optimization taken further.

use caribou_bench::harness::ExpEnv;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig, MonteCarloEstimator};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::benchmarks::{all_benchmarks, video_analytics, InputSize};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_estimation_per_workload(c: &mut Criterion) {
    let env = ExpEnv::new(88);
    let mut group = c.benchmark_group("montecarlo/workload");
    for bench in all_benchmarks(InputSize::Small) {
        let models = DefaultModels {
            profile: &bench.profile,
            runtime: &env.cloud.compute,
            latency: &env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &bench.dag,
            profile: &bench.profile,
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            home: env.home,
            config: MonteCarloConfig::default(),
        };
        let plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
        group.bench_function(BenchmarkId::from_parameter(bench.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                est.estimate(&plan, 12.5, &mut Pcg32::seed(seed))
            });
        });
    }
    group.finish();
}

fn bench_stopping_rule(c: &mut Criterion) {
    let env = ExpEnv::new(89);
    let bench = video_analytics(InputSize::Small);
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &env.cloud.compute,
        latency: &env.cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
    let mut group = c.benchmark_group("montecarlo/batch_size");
    for batch in [50usize, 200, 500] {
        let est = MonteCarloEstimator {
            dag: &bench.dag,
            profile: &bench.profile,
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            home: env.home,
            config: MonteCarloConfig {
                batch,
                max_samples: 2000,
                cv_threshold: 0.05,
            },
        };
        group.bench_function(BenchmarkId::from_parameter(batch), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                est.estimate(&plan, 12.5, &mut Pcg32::seed(seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimation_per_workload, bench_stopping_rule);
criterion_main!(benches);
