//! Telemetry recorder overhead: how much a count/event/observe costs when
//! telemetry is disabled (the production default — one thread-local bool),
//! when enabled through the NullSink, and when streaming into a MemorySink.
//! The disabled numbers are the ones that matter: instrumentation is
//! compiled into every hot path of the simulator, so they must stay in the
//! low-nanosecond range.

use caribou_telemetry::{MemorySink, NullSink};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_disabled(c: &mut Criterion) {
    assert!(!caribou_telemetry::is_enabled());
    c.bench_function("telemetry/disabled_count", |b| {
        b.iter(|| caribou_telemetry::count("bench.counter", 1));
    });
    c.bench_function("telemetry/disabled_observe", |b| {
        b.iter(|| caribou_telemetry::observe("bench.hist", 0.125));
    });
    c.bench_function("telemetry/disabled_event", |b| {
        b.iter(|| caribou_telemetry::event("bench.event", "label", 1.0));
    });
    c.bench_function("telemetry/disabled_span_at", |b| {
        b.iter(|| caribou_telemetry::span_at("bench", "span", 0.0, 1.0, 0, "t"));
    });
}

fn bench_null_sink(c: &mut Criterion) {
    caribou_telemetry::enable(Box::new(NullSink));
    c.bench_function("telemetry/null_count", |b| {
        b.iter(|| caribou_telemetry::count("bench.counter", 1));
    });
    c.bench_function("telemetry/null_observe", |b| {
        b.iter(|| caribou_telemetry::observe("bench.hist", 0.125));
    });
    c.bench_function("telemetry/null_event", |b| {
        b.iter(|| caribou_telemetry::event("bench.event", "label", 1.0));
    });
    c.bench_function("telemetry/null_span_at", |b| {
        b.iter(|| caribou_telemetry::span_at("bench", "span", 0.0, 1.0, 0, "t"));
    });
    caribou_telemetry::finish();
}

fn bench_memory_sink(c: &mut Criterion) {
    caribou_telemetry::enable(Box::new(MemorySink::default()));
    c.bench_function("telemetry/memory_event", |b| {
        b.iter(|| caribou_telemetry::event("bench.event", "label", 1.0));
    });
    caribou_telemetry::finish();
}

criterion_group!(benches, bench_disabled, bench_null_sink, bench_memory_sink);
criterion_main!(benches);
