//! Cross-provider solve benchmark and guard for the multi-provider
//! substrate.
//!
//! The criterion group measures the 24-hour cross-provider schedule
//! (`aws,gcp` universe) in hour-cells per second, cold- and warm-cache.
//! The guard at the end enforces the substrate contract:
//!
//! * cross-provider hourly schedules are bit-identical at 1 and 4
//!   workers;
//! * the hourly solve's estimate cache hit rate clears a floor (hour-to-
//!   hour plan reuse is load-bearing across providers too);
//! * provider bits are part of the cache key: an AWS-only engine sharing
//!   the cross-provider cache never reads the other's entries;
//! * measured single-worker throughput stays within 2x of the committed
//!   `BENCH_providers.json` baseline (and above an absolute floor).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use caribou_carbon::source::{ForecastingSource, RegionalSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::constraints::Objective;
use caribou_model::region::{Provider, ProviderSet, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::engine::{EstimateCache, EvalEngine};
use caribou_solver::hbss::HbssSolver;
use caribou_solver::hourly::solve_hourly_with;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Absolute floor (hour-cells/second, release build, 1 worker) under
/// which cross-provider solving has regressed badly on any plausible
/// machine.
const HOURS_PER_S_FLOOR: f64 = 2.0;

/// Minimum cold-cache hit rate over one 24-hour cross-provider solve:
/// hour-to-hour candidate reuse must survive the provider-qualified key.
const COLD_HIT_RATE_FLOOR: f64 = 0.20;

/// Builds the `caribou plan text2speech --hourly --providers aws,gcp`
/// solver world and hands the context (plus the universe's provider bits
/// and a per-RegionId provider lookup) to `f`. The context borrows a
/// pile of locals, hence the shape.
fn with_ctx<R>(
    f: impl FnOnce(
        &SolverContext<'_, ForecastingSource<'_, RegionalSource>, DefaultModels<'_>>,
        u64,
        &[Provider],
    ) -> R,
) -> R {
    let set = ProviderSet::parse("aws,gcp").expect("static provider set");
    let cloud = SimCloud::for_providers(set, 7).expect("aws,gcp backends exist");
    let regions: Vec<RegionId> = SimCloud::evaluation_universe(set)
        .iter()
        .map(|n| cloud.regions.resolve(n).expect("universe resolves"))
        .collect();
    let bench = all_benchmarks(InputSize::Small)
        .into_iter()
        .find(|b| b.dag.name().contains("text2speech"))
        .expect("benchmark exists");
    let carbon = RegionalSource::new(
        &cloud.regions,
        SyntheticCarbonSource::aws_calibrated(20231015),
    )
    .expect("calibrated zones cover the catalog");
    let home = cloud.region("us-east-1").expect("aws home");
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.10;
    constraints.tolerances.cost = 1.0;
    let permitted = constraints
        .permitted_regions(&bench.dag, &regions, &cloud.regions, home)
        .expect("constraints valid");
    let forecast = ForecastingSource::fit(&carbon, &regions, 0.0, 48);
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &cloud.compute,
        latency: &cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &bench.dag,
        profile: &bench.profile,
        permitted: &permitted,
        home,
        objective: Objective::Carbon,
        tolerances: constraints.tolerances,
        carbon_source: &forecast,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&cloud.pricing),
        models: &models,
        mc_config: MonteCarloConfig::default(),
    };
    let bits = cloud.regions.provider_bits(&regions);
    let provider_of: Vec<Provider> = cloud.regions.iter().map(|(_, s)| s.provider).collect();
    f(&ctx, bits, &provider_of)
}

fn solve_24h<S, M>(
    ctx: &SolverContext<'_, S, M>,
    bits: u64,
    workers: usize,
    cache: Arc<EstimateCache>,
) -> (caribou_model::plan::HourlyPlans, EvalEngine)
where
    S: caribou_carbon::source::CarbonDataSource + Sync,
    M: caribou_metrics::montecarlo::StageModels + Sync,
{
    let engine = EvalEngine::with_cache_providers(7, 0, bits, workers, cache);
    let plans = solve_hourly_with(
        &engine,
        &HbssSolver::new(),
        ctx,
        0.0,
        0.0,
        86_400.0,
        &mut Pcg32::seed(7),
    );
    (plans, engine)
}

fn bench_providers(c: &mut Criterion) {
    let mut group = c.benchmark_group("providers");
    group.sample_size(10);
    with_ctx(|ctx, bits, _| {
        group.bench_function(BenchmarkId::new("solve_24h", "aws_gcp_cold"), |b| {
            b.iter(|| {
                let cache = EstimateCache::shared(1 << 16);
                black_box(solve_24h(ctx, bits, 1, cache).0)
            });
        });
        let warm = EstimateCache::shared(1 << 16);
        solve_24h(ctx, bits, 1, Arc::clone(&warm));
        group.bench_function(BenchmarkId::new("solve_24h", "aws_gcp_warm"), |b| {
            b.iter(|| black_box(solve_24h(ctx, bits, 1, Arc::clone(&warm)).0));
        });
    });
    group.finish();
}

/// Hard guard on the cross-provider substrate contract plus the
/// committed throughput baseline.
fn guard_providers() {
    with_ctx(|ctx, bits, provider_of| {
        assert_ne!(bits, 0, "aws,gcp universe must carry non-AWS bits");

        // Bit-identical 24-hour schedules at 1 and 4 workers.
        let (p1, e1) = solve_24h(ctx, bits, 1, EstimateCache::shared(1 << 16));
        let (p4, _) = solve_24h(ctx, bits, 4, EstimateCache::shared(1 << 16));
        assert_eq!(p1, p4, "worker count changed the cross-provider schedule");

        // The schedule actually spans providers (the point of the wider
        // plan space): at least one assignment lands on a non-AWS region.
        let crosses = (0..24).any(|h| {
            p1.plan_for_hour(h)
                .assignment()
                .iter()
                .any(|r| provider_of[r.index()] != Provider::Aws)
        });
        assert!(crosses, "no hour offloaded to the second provider");

        // Cold hit rate: hour-to-hour reuse through the provider-keyed
        // cache.
        let (hits, misses) = (e1.hit_count() as f64, e1.miss_count() as f64);
        let cold_rate = hits / (hits + misses).max(1.0);
        println!("providers/guard: cold hit rate {:.1}%", cold_rate * 100.0);
        assert!(
            cold_rate >= COLD_HIT_RATE_FLOOR,
            "cold hit rate {cold_rate:.3} below floor {COLD_HIT_RATE_FLOOR}"
        );

        // Provider bits are part of the key: an AWS-only engine sharing
        // the cross-provider cache must not read its entries. Evaluate a
        // plan the cross-provider engine has certainly cached; the
        // bits=0 engine must miss.
        let probe = p1.plan_for_hour(0).clone();
        let shared = e1.cache();
        let aws_engine = EvalEngine::with_cache_providers(7, 0, 0, 1, Arc::clone(shared));
        let misses_before = aws_engine.miss_count();
        let hits_before = aws_engine.hit_count();
        aws_engine.evaluate(ctx, &probe, 0.5);
        assert_eq!(
            aws_engine.hit_count(),
            hits_before,
            "aws-only engine read a provider-qualified cache entry"
        );
        assert_eq!(aws_engine.miss_count(), misses_before + 1);

        // Throughput: best of 3 cold single-worker 24-hour solves.
        let mut best_s = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(solve_24h(ctx, bits, 1, EstimateCache::shared(1 << 16)).0);
            best_s = best_s.min(start.elapsed().as_secs_f64());
        }
        let throughput = 24.0 / best_s;
        println!("providers/guard: {throughput:.1} hour-cells/s (1 worker, cold, best of 3)");
        assert!(
            throughput >= HOURS_PER_S_FLOOR,
            "cross-provider throughput {throughput:.1} hour-cells/s below floor {HOURS_PER_S_FLOOR:.1}"
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_providers.json");
        if let Some((committed_tp, committed_rate)) = read_baseline(path) {
            println!(
                "providers/guard: committed baseline {committed_tp:.1} hour-cells/s, {:.1}% hit rate",
                committed_rate * 100.0
            );
            assert!(
                throughput >= committed_tp / 2.0,
                "throughput {throughput:.1} fell below half the committed baseline {committed_tp:.1}"
            );
            assert!(
                cold_rate >= committed_rate - 0.10,
                "cold hit rate {cold_rate:.3} fell more than 10pp below committed {committed_rate:.3}"
            );
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let json = format!(
            "{{\n  \"hour_cells_per_s_1w\": {throughput:.1},\n  \"cold_hit_rate\": {cold_rate:.3},\n  \"cores\": {cores}\n}}\n"
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("providers/guard: could not write {path}: {e}");
        }
    });
}

fn read_baseline(path: &str) -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    Some((
        value.get("hour_cells_per_s_1w")?.as_f64()?,
        value.get("cold_hit_rate")?.as_f64()?,
    ))
}

criterion_group!(benches, bench_providers);

fn main() {
    benches();
    guard_providers();
}
