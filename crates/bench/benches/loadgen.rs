//! Sustained-load throughput benchmark and guard for `caribou loadgen`.
//!
//! The criterion group measures the end-to-end data plane (arrival
//! generation + simulated cloud + execution engine with pooled scratch)
//! in invocations per second. The guard at the end enforces the harness
//! contract:
//!
//! * the merged report is bit-identical at 1 and 2 workers;
//! * the `loadgen.invocations` counter and warm-scratch
//!   `engine.alloc_per_invocation` gauge land where the buffer-pooling
//!   scheme says they must;
//! * measured single-worker throughput stays within 2x of the committed
//!   `BENCH_loadgen.json` baseline (and above an absolute floor), so a
//!   data-plane allocation regression fails the bench run.

use std::hint::black_box;
use std::time::Instant;

use caribou_core::loadgen::{run_loadgen, LoadgenConfig};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_workloads::arrivals::ArrivalProcess;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Absolute floor (invocations/second, release build, 1 worker) under
/// which the data plane has regressed badly on any plausible machine.
/// Raised from 5k after the near-zero-alloc work (static payload Bytes,
/// interned names, free-listed KV/blob keys, TinyMap usage meters) lifted
/// the 1-core container from ~54k to ~136k inv/s.
const THROUGHPUT_FLOOR: f64 = 100_000.0;

fn config(n: usize, workers: usize) -> LoadgenConfig {
    LoadgenConfig {
        invocations: n,
        seed: 42,
        workers,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 100.0 },
        scenario: TransmissionScenario::BEST,
    }
}

fn bench_loadgen(c: &mut Criterion) {
    let bench = text2speech_censoring(InputSize::Small);
    let mut group = c.benchmark_group("loadgen");
    group.sample_size(10);
    for arrival in ["poisson", "diurnal", "bursty"] {
        group.bench_function(BenchmarkId::new("5k", arrival), |b| {
            let mut cfg = config(5_000, 1);
            cfg.arrivals = ArrivalProcess::parse(arrival, 100.0).unwrap();
            b.iter(|| black_box(run_loadgen(&bench, &cfg).unwrap().completed));
        });
    }
    group.finish();
}

/// Hard guard on the loadgen contract plus the committed throughput
/// baseline.
fn guard_loadgen() {
    let bench = text2speech_censoring(InputSize::Small);

    // Bit-identical merges at any worker count.
    let one = run_loadgen(&bench, &config(20_000, 1)).unwrap();
    let two = run_loadgen(&bench, &config(20_000, 2)).unwrap();
    assert_eq!(one.latencies_s.len(), two.latencies_s.len());
    for (a, b) in one.latencies_s.iter().zip(&two.latencies_s) {
        assert_eq!(a.to_bits(), b.to_bits(), "worker count changed a latency");
    }
    assert_eq!(one.completed, two.completed);
    assert_eq!(one.exec_carbon_g.to_bits(), two.exec_carbon_g.to_bits());
    assert_eq!(one.cost_usd.to_bits(), two.cost_usd.to_bits());

    // Telemetry: invocation counter moves, warm scratch allocates only the
    // two caller-owned log-record vectors per invocation.
    caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
    run_loadgen(&bench, &config(5_000, 1)).unwrap();
    let finished = caribou_telemetry::finish().expect("session active");
    assert_eq!(finished.recorder.counter("loadgen.invocations"), 5_000);
    assert_eq!(
        finished.recorder.gauges["engine.alloc_per_invocation"], 2.0,
        "buffer pooling stopped holding: warm invocations grew pooled buffers"
    );

    // Throughput: best of 3 single-worker 50k runs.
    let cfg = config(50_000, 1);
    let mut best_s = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(run_loadgen(&bench, &cfg).unwrap().completed);
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    let throughput = 50_000.0 / best_s;
    println!("loadgen/guard: {throughput:.0} inv/s (1 worker, 50k invocations, best of 3)");
    assert!(
        throughput >= THROUGHPUT_FLOOR,
        "loadgen throughput {throughput:.0} inv/s below floor {THROUGHPUT_FLOOR:.0}"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_loadgen.json");
    if let Some(committed) = read_baseline(path) {
        println!("loadgen/guard: committed baseline {committed:.0} inv/s");
        assert!(
            throughput >= committed / 2.0,
            "loadgen throughput {throughput:.0} inv/s fell below half the committed baseline {committed:.0}"
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"invocations_per_s_1w\": {throughput:.0},\n  \"invocations\": 50000,\n  \"cores\": {cores}\n}}\n"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("loadgen/guard: could not write {path}: {e}");
    }
}

fn read_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get("invocations_per_s_1w")?.as_f64()
}

criterion_group!(benches, bench_loadgen);

fn main() {
    benches();
    guard_loadgen();
}
