//! Sustained-load throughput benchmark and guard for `caribou loadgen`.
//!
//! The criterion group measures the end-to-end data plane (arrival
//! generation + simulated cloud + execution engine with pooled scratch)
//! in invocations per second. The guard at the end enforces the harness
//! contract:
//!
//! * the merged report is bit-identical at 1 and 2 workers on the
//!   persistent sharded path, across chunk boundaries;
//! * the `loadgen.invocations` counter and warm-scratch
//!   `engine.alloc_per_invocation` gauge land where the buffer-pooling
//!   scheme says they must;
//! * measured single-worker throughput stays within 2x of the committed
//!   `BENCH_loadgen.json` baseline (and above an absolute floor), so a
//!   data-plane allocation regression fails the bench run;
//! * peak RSS is flat in the invocation count: quadrupling the run
//!   length must not grow the VmHWM high-water mark by more than a
//!   fixed slack, so any reintroduced O(N) buffer (exact latency
//!   vectors, fully materialized arrival vectors) fails the bench run.

use std::hint::black_box;
use std::time::Instant;

use caribou_core::loadgen::{run_loadgen, LoadgenConfig};
use caribou_workloads::arrivals::ArrivalProcess;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Absolute floor (invocations/second, release build, 1 worker) under
/// which the data plane has regressed badly on any plausible machine.
/// Raised from 5k after the near-zero-alloc work (static payload Bytes,
/// interned names, free-listed KV/blob keys, TinyMap usage meters) lifted
/// the 1-core container from ~54k to ~136k inv/s; the persistent sharded
/// path holds the same floor.
const THROUGHPUT_FLOOR: f64 = 100_000.0;

/// Maximum VmHWM growth (KiB) allowed between the 500k-invocation
/// calibration run and the 2M-invocation run. With O(buckets) streaming
/// aggregates and per-round arrival buffers both runs touch the same
/// working set; an O(N) latency or arrival vector would add ~12 MiB for
/// the extra 1.5M invocations and trip this.
const RSS_GROWTH_CEILING_KB: u64 = 8 * 1024;

fn config(n: usize, workers: usize) -> LoadgenConfig {
    LoadgenConfig {
        invocations: n,
        seed: 42,
        workers,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 100.0 },
        ..LoadgenConfig::default()
    }
}

fn bench_loadgen(c: &mut Criterion) {
    let bench = text2speech_censoring(InputSize::Small);
    let mut group = c.benchmark_group("loadgen");
    group.sample_size(10);
    for arrival in ["poisson", "diurnal", "bursty"] {
        group.bench_function(BenchmarkId::new("5k", arrival), |b| {
            let mut cfg = config(5_000, 1);
            cfg.arrivals = ArrivalProcess::parse(arrival, 100.0).unwrap();
            b.iter(|| black_box(run_loadgen(&bench, &cfg).unwrap().completed));
        });
    }
    group.finish();
}

/// Peak resident set size (VmHWM) in KiB — monotone over the process
/// lifetime, which is what makes the growth-between-runs check valid.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Hard guard on the loadgen contract plus the committed throughput
/// baseline.
fn guard_loadgen() {
    let bench = text2speech_censoring(InputSize::Small);

    // Bit-identical merges at any worker count, across chunk boundaries
    // (20k invocations = 3 chunks = 3 persistent shards).
    let one = run_loadgen(&bench, &config(20_000, 1)).unwrap();
    let two = run_loadgen(&bench, &config(20_000, 2)).unwrap();
    assert_eq!(one.invocations(), two.invocations());
    assert!(one.chunks > 1, "guard run must span chunk boundaries");
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(
            one.latency_quantile(q).to_bits(),
            two.latency_quantile(q).to_bits(),
            "worker count changed the p{} latency",
            q * 100.0
        );
    }
    assert_eq!(
        one.mean_latency_s().to_bits(),
        two.mean_latency_s().to_bits()
    );
    assert_eq!(one.completed, two.completed);
    assert_eq!(one.cold_starts, two.cold_starts);
    assert_eq!(one.warm_starts, two.warm_starts);
    assert_eq!(one.exec_carbon_g.to_bits(), two.exec_carbon_g.to_bits());
    assert_eq!(one.cost_usd.to_bits(), two.cost_usd.to_bits());

    // Telemetry: invocation counter moves, warm scratch allocates only the
    // two caller-owned log-record vectors per invocation.
    caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
    run_loadgen(&bench, &config(5_000, 1)).unwrap();
    let finished = caribou_telemetry::finish().expect("session active");
    assert_eq!(finished.recorder.counter("loadgen.invocations"), 5_000);
    assert_eq!(
        finished.recorder.gauges["engine.alloc_per_invocation"], 2.0,
        "buffer pooling stopped holding: warm invocations grew pooled buffers"
    );

    // Throughput: best of 3 single-worker 50k runs on the persistent path.
    let cfg = config(50_000, 1);
    let mut best_s = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        black_box(run_loadgen(&bench, &cfg).unwrap().completed);
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    let throughput = 50_000.0 / best_s;
    println!("loadgen/guard: {throughput:.0} inv/s (1 worker, 50k invocations, best of 3)");
    assert!(
        throughput >= THROUGHPUT_FLOOR,
        "loadgen throughput {throughput:.0} inv/s below floor {THROUGHPUT_FLOOR:.0}"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_loadgen.json");
    if let Some(committed) = read_baseline(path) {
        println!("loadgen/guard: committed baseline {committed:.0} inv/s");
        assert!(
            throughput >= committed / 2.0,
            "loadgen throughput {throughput:.0} inv/s fell below half the committed baseline {committed:.0}"
        );
    }

    // Flat RSS: run 500k invocations to park the high-water mark, then 2M;
    // O(buckets) aggregates and per-round arrival buffers mean the longer
    // run adds nothing proportional to N.
    let rss_cfg = |n| LoadgenConfig {
        arrivals: ArrivalProcess::Diurnal { rate_per_s: 200.0 },
        ..config(n, 1)
    };
    black_box(run_loadgen(&bench, &rss_cfg(500_000)).unwrap().completed);
    let before_kb = peak_rss_kb();
    black_box(run_loadgen(&bench, &rss_cfg(2_000_000)).unwrap().completed);
    let after_kb = peak_rss_kb();
    let growth_kb = match (before_kb, after_kb) {
        (Some(b), Some(a)) => {
            let growth = a.saturating_sub(b);
            println!(
                "loadgen/guard: peak RSS {b} KiB after 500k, {a} KiB after 2M (+{growth} KiB)"
            );
            assert!(
                growth <= RSS_GROWTH_CEILING_KB,
                "peak RSS grew {growth} KiB between 500k and 2M invocations \
                 (ceiling {RSS_GROWTH_CEILING_KB} KiB): an O(N) buffer is back"
            );
            growth as i64
        }
        _ => {
            eprintln!("loadgen/guard: /proc/self/status unavailable; skipping RSS ceiling");
            -1
        }
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"invocations_per_s_1w\": {throughput:.0},\n  \"invocations\": 50000,\n  \"rss_growth_kb_500k_to_2m\": {growth_kb},\n  \"cores\": {cores}\n}}\n"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("loadgen/guard: could not write {path}: {e}");
    }
}

fn read_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get("invocations_per_s_1w")?.as_f64()
}

criterion_group!(benches, bench_loadgen);

fn main() {
    benches();
    guard_loadgen();
}
