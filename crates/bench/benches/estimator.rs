//! Batched-estimator micro-benchmarks and the single-core speedup guard.
//!
//! The criterion group compares the scalar reference path against the
//! batched structure-of-arrays path at each lane width on the paper's
//! workloads. The guard at the end enforces the tentpole contract:
//!
//! * the batched path is bit-identical to the scalar path (spot-checked
//!   here; the exhaustive differential harness lives in
//!   `tests/estimator_diff.rs`);
//! * at the solver's default stopping rule the batched path beats the
//!   scalar path by the per-sample floor (the draw stream is bit-pinned,
//!   so the ceiling there is the Box–Muller transcendental budget — see
//!   EXPERIMENTS.md);
//! * at the high-precision stopping rule (where the reference path's
//!   per-batch full re-summarization is quadratic in the batch count)
//!   the batched path is ≥4× faster on one thread;
//! * measured throughput stays within 2× of the committed
//!   `BENCH_solver.json` estimator baseline, so a regression that merely
//!   halves the win still fails the bench run.

use std::hint::black_box;
use std::time::Instant;

use caribou_bench::harness::ExpEnv;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{
    DefaultModels, EstimateSummary, MonteCarloConfig, MonteCarloEstimator, DEFAULT_LANES,
};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::benchmarks::{text2speech_censoring, Benchmark, InputSize};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Single-thread batched-vs-scalar speedup floor at the high-precision
/// stopping rule, where deep sweeps expose the reference path's quadratic
/// re-summarization. Measured ~5.0x on the 1-core container.
const SPEEDUP_FLOOR_PRECISION: f64 = 4.0;

/// Floor at the solver's default stopping rule (one 200-sample batch).
/// The draw stream is bit-pinned, so per-sample cost is bounded below by
/// the Box–Muller transcendental budget (~960 ns/sample measured); the
/// batched path lands within ~20% of that floor and the honest ceiling is
/// ~2.5x. Measured ~2.2x on the 1-core container.
const SPEEDUP_FLOOR_DEFAULT: f64 = 1.7;

/// High-precision stopping rule: a 0.05% relative-standard-error target
/// over a 20,000-sample cap. Candidate sweeps at this precision are the
/// regime ROADMAP item 2 targets (more candidate evaluations per decision
/// window); the workload below runs to the cap (100 batches).
const PRECISION: MonteCarloConfig = MonteCarloConfig {
    batch: 200,
    max_samples: 24_000,
    cv_threshold: 5e-4,
};

/// Runs `f` with the estimator every bench and the guard share: the
/// text2speech workload over the seeded experiment environment, default
/// paper stopping rule (batches of 200 up to 2,000 samples).
fn with_estimator<R>(
    f: impl FnOnce(
        &MonteCarloEstimator<'_, caribou_carbon::source::RegionalSource, DefaultModels<'_>>,
        &DeploymentPlan,
    ) -> R,
) -> R {
    let env = ExpEnv::new(88);
    let bench: Benchmark = text2speech_censoring(InputSize::Small);
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &env.cloud.compute,
        latency: &env.cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let est = MonteCarloEstimator {
        dag: &bench.dag,
        profile: &bench.profile,
        carbon_source: &env.carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&env.cloud.pricing),
        models: &models,
        home: env.home,
        config: MonteCarloConfig::default(),
    };
    // A multi-region plan so transmission sampling is on the hot path.
    let mut plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
    let west = env.cloud.regions.id_of("us-west-2").unwrap();
    plan.set(caribou_model::dag::NodeId(1), west);
    f(&est, &plan)
}

fn bench_estimator(c: &mut Criterion) {
    with_estimator(|est, plan| {
        let mut group = c.benchmark_group("estimator");
        group.sample_size(10);
        group.bench_function("scalar", |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                est.estimate_scalar(plan, 12.5, &mut Pcg32::seed(seed))
            });
        });
        for lanes in [1usize, 4, 8, 16] {
            group.bench_function(BenchmarkId::new("batched", format!("{lanes}l")), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    est.estimate_batched(plan, 12.5, &mut Pcg32::seed(seed), lanes)
                });
            });
        }
        group.finish();
    });
}

/// Best-of-batches wall-clock for `runs` estimates.
fn time_estimates(runs: usize, mut estimate: impl FnMut(u64) -> EstimateSummary) -> f64 {
    let mut best_s = f64::INFINITY;
    for round in 0..3 {
        let start = Instant::now();
        for i in 0..runs {
            black_box(estimate((round * runs + i) as u64));
        }
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    best_s
}

/// Hard guard: bit-identity, the speedup floors at both stopping rules
/// (≥4× single-thread at the precision rule), and the committed-baseline
/// regression trip.
fn guard_batched_estimator() {
    const RUNS_DEFAULT: usize = 60;
    const RUNS_PRECISION: usize = 2;
    let (speedup, precision_speedup, scalar_per_s, batched_per_s) = with_estimator(|est, plan| {
        // Contract first: identical bits at every width and via dispatch.
        for seed in [3u64, 77, 4242] {
            let scalar = est.estimate_scalar(plan, 12.5, &mut Pcg32::seed(seed));
            for lanes in [1usize, 4, 8, 16] {
                let batched = est.estimate_batched(plan, 12.5, &mut Pcg32::seed(seed), lanes);
                assert_eq!(scalar, batched, "lane width {lanes} diverged (seed {seed})");
            }
            let dispatched = est.estimate(plan, 12.5, &mut Pcg32::seed(seed));
            assert_eq!(scalar, dispatched, "dispatching estimate() diverged");
        }

        let scalar_s = time_estimates(RUNS_DEFAULT, |seed| {
            est.estimate_scalar(plan, 12.5, &mut Pcg32::seed(seed))
        });
        let batched_s = time_estimates(RUNS_DEFAULT, |seed| {
            est.estimate_batched(plan, 12.5, &mut Pcg32::seed(seed), DEFAULT_LANES)
        });

        // The precision rule runs the same estimator to the 20k-sample
        // cap; identity there is covered by the diff harness's ragged and
        // multi-batch cases (the fold rule is config-independent), but
        // spot-check one seed anyway before timing.
        let deep = MonteCarloEstimator {
            dag: est.dag,
            profile: est.profile,
            carbon_source: est.carbon_source,
            carbon_model: est.carbon_model,
            cost_model: est.cost_model.clone(),
            models: est.models,
            home: est.home,
            config: PRECISION,
        };
        let dscalar = deep.estimate_scalar(plan, 12.5, &mut Pcg32::seed(7));
        let dbatched = deep.estimate_batched(plan, 12.5, &mut Pcg32::seed(7), DEFAULT_LANES);
        assert_eq!(dscalar, dbatched, "precision config diverged");
        assert_eq!(
            dscalar.samples, PRECISION.max_samples,
            "precision run must hit the cap"
        );
        let deep_scalar_s = time_estimates(RUNS_PRECISION, |seed| {
            deep.estimate_scalar(plan, 12.5, &mut Pcg32::seed(seed))
        });
        let deep_batched_s = time_estimates(RUNS_PRECISION, |seed| {
            deep.estimate_batched(plan, 12.5, &mut Pcg32::seed(seed), DEFAULT_LANES)
        });
        (
            scalar_s / batched_s,
            deep_scalar_s / deep_batched_s,
            RUNS_DEFAULT as f64 / scalar_s,
            RUNS_DEFAULT as f64 / batched_s,
        )
    });
    println!(
        "estimator/guard: scalar {scalar_per_s:.0} est/s · batched {batched_per_s:.0} est/s · \
         speedup {speedup:.2}x default · {precision_speedup:.2}x precision \
         (1 thread, {DEFAULT_LANES} lanes)"
    );
    assert!(
        speedup >= SPEEDUP_FLOOR_DEFAULT,
        "batched estimator only {speedup:.2}x faster than scalar at the default stopping \
         rule (floor {SPEEDUP_FLOOR_DEFAULT:.1}x)"
    );
    assert!(
        precision_speedup >= SPEEDUP_FLOOR_PRECISION,
        "batched estimator only {precision_speedup:.2}x faster than scalar at the precision \
         stopping rule (floor {SPEEDUP_FLOOR_PRECISION:.1}x)"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    if let Some(committed) = read_baseline(path) {
        println!("estimator/guard: committed baseline {committed:.0} est/s (batched)");
        assert!(
            batched_per_s >= committed / 2.0,
            "batched estimator {batched_per_s:.0} est/s fell below half the committed \
             baseline {committed:.0}"
        );
    }
    write_baseline(
        path,
        speedup,
        precision_speedup,
        scalar_per_s,
        batched_per_s,
    );
}

fn read_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get("estimator_batched_per_s")?.as_f64()
}

/// Merges the estimator numbers into `BENCH_solver.json`, preserving the
/// solver24 guard's fields (each guard owns its own keys).
fn write_baseline(
    path: &str,
    speedup: f64,
    precision_speedup: f64,
    scalar_per_s: f64,
    batched_per_s: f64,
) {
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .unwrap_or_else(|| serde_json::Value::Object(serde_json::Map::new()));
    if let serde_json::Value::Object(map) = &mut root {
        map.insert(
            "estimator_speedup_1t".to_string(),
            serde_json::Value::from(round3(speedup)),
        );
        map.insert(
            "estimator_speedup_precision_1t".to_string(),
            serde_json::Value::from(round3(precision_speedup)),
        );
        map.insert(
            "estimator_scalar_per_s".to_string(),
            serde_json::Value::from(scalar_per_s.round()),
        );
        map.insert(
            "estimator_batched_per_s".to_string(),
            serde_json::Value::from(batched_per_s.round()),
        );
    }
    match serde_json::to_string_pretty(&root) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("estimator/guard: could not write {path}: {e}");
            }
        }
        Err(e) => eprintln!("estimator/guard: could not serialize baseline: {e}"),
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

criterion_group!(benches, bench_estimator);

fn main() {
    benches();
    guard_batched_estimator();
}
