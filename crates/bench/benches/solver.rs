//! Solver micro-benchmarks and the HBSS-vs-baselines ablation (§5.1).
//!
//! Measures the wall-clock of one deployment solve for the three solver
//! strategies across DAG sizes. The paper reports HBSS as the only
//! tractable option at production scale: exhaustive enumeration is
//! exponential, coarse is fast but globally suboptimal.
//!
//! The `solver24` group benches the full 24-hour schedule solve through
//! the deterministic evaluation engine at 1 and 4 workers against the
//! sequential baseline, and a hand-rolled guard at the end verifies the
//! engine's contract: bit-identical schedules at any worker count, a warm
//! estimate cache, and (on machines with ≥4 cores) a ≥2× speedup.

use std::hint::black_box;
use std::time::Instant;

use caribou_bench::harness::{default_tolerances, mc_config, ExpEnv};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::DefaultModels;
use caribou_model::constraints::{Constraints, Objective};
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::engine::EvalEngine;
use caribou_solver::hbss::HbssSolver;
use caribou_solver::hourly::{solve_hourly, solve_hourly_with};
use caribou_solver::{coarse, exhaustive};
use caribou_workloads::benchmarks::{
    dna_visualization, text2speech_censoring, video_analytics, Benchmark, InputSize,
};
use criterion::{criterion_group, BenchmarkId, Criterion};

fn bench_solvers(c: &mut Criterion) {
    let env = ExpEnv::new(77);
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for bench in [
        dna_visualization(InputSize::Small),
        text2speech_censoring(InputSize::Small),
        video_analytics(InputSize::Small),
    ] {
        let mk_ctx = |b: &Benchmark, permitted: &[Vec<caribou_model::region::RegionId>]| {
            // Closure only exists to name the lifetime; contexts are
            // constructed inline below.
            let _ = (b, permitted);
        };
        let _ = mk_ctx;
        let mut constraints = Constraints::unconstrained(bench.dag.node_count());
        constraints.tolerances = default_tolerances();
        let permitted = constraints
            .permitted_regions(&bench.dag, &env.regions, &env.cloud.regions, env.home)
            .unwrap();
        let models = DefaultModels {
            profile: &bench.profile,
            runtime: &env.cloud.compute,
            latency: &env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &bench.dag,
            profile: &bench.profile,
            permitted: &permitted,
            home: env.home,
            objective: Objective::Carbon,
            tolerances: default_tolerances(),
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            mc_config: mc_config(),
        };
        group.bench_with_input(BenchmarkId::new("hbss", bench.name), &ctx, |b, ctx| {
            let solver = HbssSolver::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                solver.solve(ctx, 12.5, &mut Pcg32::seed(seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("coarse", bench.name), &ctx, |b, ctx| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                coarse::solve(ctx, 12.5, &mut Pcg32::seed(seed))
            });
        });
        // Exhaustive only where the space is enumerable in reasonable time.
        if ctx.search_space_size() <= 1024 {
            group.bench_with_input(
                BenchmarkId::new("exhaustive", bench.name),
                &ctx,
                |b, ctx| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        exhaustive::solve(ctx, 12.5, &mut Pcg32::seed(seed))
                    });
                },
            );
        }
    }
    group.finish();
}

/// Runs `f` with a text2speech solver context over the experiment
/// environment — the workload the 24-hour engine benches and guard share.
fn with_t2s_ctx<R>(
    f: impl FnOnce(&SolverContext<'_, caribou_carbon::source::RegionalSource, DefaultModels<'_>>) -> R,
) -> R {
    let env = ExpEnv::new(77);
    let bench = text2speech_censoring(InputSize::Small);
    let mut constraints = Constraints::unconstrained(bench.dag.node_count());
    constraints.tolerances = default_tolerances();
    let permitted = constraints
        .permitted_regions(&bench.dag, &env.regions, &env.cloud.regions, env.home)
        .unwrap();
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &env.cloud.compute,
        latency: &env.cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &bench.dag,
        profile: &bench.profile,
        permitted: &permitted,
        home: env.home,
        objective: Objective::Carbon,
        tolerances: default_tolerances(),
        carbon_source: &env.carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&env.cloud.pricing),
        models: &models,
        mc_config: mc_config(),
    };
    f(&ctx)
}

fn bench_solve_24h(c: &mut Criterion) {
    with_t2s_ctx(|ctx| {
        let solver = HbssSolver::new();
        let mut group = c.benchmark_group("solver24");
        group.sample_size(10);
        group.bench_function("sequential", |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                solve_hourly(&solver, ctx, 12.0, 0.0, 1e9, &mut Pcg32::seed(seed))
            });
        });
        for workers in [1usize, 4] {
            group.bench_function(BenchmarkId::new("engine", format!("{workers}w")), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    // A fresh engine per solve: the cache must earn its
                    // keep within one 24-hour schedule, not across
                    // repetitions.
                    let engine = EvalEngine::new(seed, workers);
                    solve_hourly_with(
                        &engine,
                        &solver,
                        ctx,
                        12.0,
                        0.0,
                        1e9,
                        &mut Pcg32::seed(seed),
                    )
                });
            });
        }
        group.finish();
    });
}

/// Best-of-batches wall-clock of one full 24-hour schedule solve.
fn time_solve(runs: usize, mut solve: impl FnMut(u64) -> caribou_model::plan::HourlyPlans) -> f64 {
    let mut best_s = f64::INFINITY;
    for i in 0..runs {
        let start = Instant::now();
        black_box(solve(1000 + i as u64));
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    best_s
}

/// Hard guard on the evaluation engine's contract, reported against the
/// telemetry counters the engine flushes:
///
/// * the 24-hour schedule is bit-identical at 1 and 4 workers;
/// * `solver.cache.hit` is positive on a default HBSS schedule solve;
/// * with ≥4 cores available, the 4-worker solve is ≥2× faster than the
///   sequential baseline (on smaller machines the speedup is printed but
///   not asserted — determinism makes the result identical either way).
fn guard_parallel_solve() {
    caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
    let (speedup_4w, hits, misses) = with_t2s_ctx(|ctx| {
        let solver = HbssSolver::new();

        // Contract first: identical schedules, warm cache.
        let e1 = EvalEngine::new(7, 1);
        let e4 = EvalEngine::new(7, 4);
        let p1 = solve_hourly_with(&e1, &solver, ctx, 12.0, 0.0, 1e9, &mut Pcg32::seed(7));
        let p4 = solve_hourly_with(&e4, &solver, ctx, 12.0, 0.0, 1e9, &mut Pcg32::seed(7));
        assert_eq!(p1, p4, "24-hour schedule must not depend on worker count");
        assert!(e1.hit_count() > 0, "estimate cache never hit");
        assert_eq!(e1.hit_count(), e4.hit_count(), "cache traffic must match");

        let seq_s = time_solve(3, |seed| {
            solve_hourly(&solver, ctx, 12.0, 0.0, 1e9, &mut Pcg32::seed(seed))
        });
        let w1_s = time_solve(3, |seed| {
            let engine = EvalEngine::new(seed, 1);
            solve_hourly_with(
                &engine,
                &solver,
                ctx,
                12.0,
                0.0,
                1e9,
                &mut Pcg32::seed(seed),
            )
        });
        let w4_s = time_solve(3, |seed| {
            let engine = EvalEngine::new(seed, 4);
            solve_hourly_with(
                &engine,
                &solver,
                ctx,
                12.0,
                0.0,
                1e9,
                &mut Pcg32::seed(seed),
            )
        });
        println!(
            "solver24/guard: sequential {seq_s:.3} s · engine 1w {w1_s:.3} s · engine 4w {w4_s:.3} s"
        );
        (seq_s / w4_s, e1.hit_count(), e1.miss_count())
    });
    let counted_hits = caribou_telemetry::finish()
        .map(|f| f.recorder.counter("solver.cache.hit"))
        .unwrap_or(0);
    println!(
        "solver24/guard: cache {hits} hits / {misses} misses (telemetry counted {counted_hits}) · 4w speedup {speedup_4w:.2}x"
    );
    assert!(
        counted_hits > 0,
        "solver.cache.hit telemetry counter stayed zero"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        assert!(
            speedup_4w >= 2.0,
            "4-worker 24-hour solve only {speedup_4w:.2}x faster than sequential (budget: 2x, cores: {cores})"
        );
    } else {
        println!("solver24/guard: speedup assertion skipped ({cores} core(s) available; needs 4)");
    }
    write_baseline(speedup_4w, hits, misses, cores);
}

/// Records the measured numbers so CI diffs have a committed baseline.
/// `BENCH_solver.json` is shared with the estimator bench's guard, so the
/// existing file is merged into rather than overwritten.
fn write_baseline(speedup_4w: f64, hits: u64, misses: u64, cores: usize) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .unwrap_or_else(|| serde_json::Value::Object(serde_json::Map::new()));
    if let serde_json::Value::Object(map) = &mut root {
        map.insert(
            "speedup_4w".to_string(),
            serde_json::Value::from((speedup_4w * 1000.0).round() / 1000.0),
        );
        map.insert("cache_hits".to_string(), serde_json::Value::from(hits));
        map.insert("cache_misses".to_string(), serde_json::Value::from(misses));
        map.insert("cores".to_string(), serde_json::Value::from(cores as u64));
    }
    match serde_json::to_string_pretty(&root) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("solver24/guard: could not write {path}: {e}");
            }
        }
        Err(e) => eprintln!("solver24/guard: could not serialize baseline: {e}"),
    }
}

criterion_group!(benches, bench_solvers, bench_solve_24h);

fn main() {
    benches();
    guard_parallel_solve();
}
