//! Solver micro-benchmarks and the HBSS-vs-baselines ablation (§5.1).
//!
//! Measures the wall-clock of one deployment solve for the three solver
//! strategies across DAG sizes. The paper reports HBSS as the only
//! tractable option at production scale: exhaustive enumeration is
//! exponential, coarse is fast but globally suboptimal.

use caribou_bench::harness::{default_tolerances, mc_config, ExpEnv};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::DefaultModels;
use caribou_model::constraints::{Constraints, Objective};
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use caribou_solver::{coarse, exhaustive};
use caribou_workloads::benchmarks::{
    dna_visualization, text2speech_censoring, video_analytics, Benchmark, InputSize,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_solvers(c: &mut Criterion) {
    let env = ExpEnv::new(77);
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for bench in [
        dna_visualization(InputSize::Small),
        text2speech_censoring(InputSize::Small),
        video_analytics(InputSize::Small),
    ] {
        let mk_ctx = |b: &Benchmark, permitted: &[Vec<caribou_model::region::RegionId>]| {
            // Closure only exists to name the lifetime; contexts are
            // constructed inline below.
            let _ = (b, permitted);
        };
        let _ = mk_ctx;
        let mut constraints = Constraints::unconstrained(bench.dag.node_count());
        constraints.tolerances = default_tolerances();
        let permitted = constraints
            .permitted_regions(&bench.dag, &env.regions, &env.cloud.regions, env.home)
            .unwrap();
        let models = DefaultModels {
            profile: &bench.profile,
            runtime: &env.cloud.compute,
            latency: &env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &bench.dag,
            profile: &bench.profile,
            permitted: &permitted,
            home: env.home,
            objective: Objective::Carbon,
            tolerances: default_tolerances(),
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            mc_config: mc_config(),
        };
        group.bench_with_input(BenchmarkId::new("hbss", bench.name), &ctx, |b, ctx| {
            let solver = HbssSolver::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                solver.solve(ctx, 12.5, &mut Pcg32::seed(seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("coarse", bench.name), &ctx, |b, ctx| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                coarse::solve(ctx, 12.5, &mut Pcg32::seed(seed))
            });
        });
        // Exhaustive only where the space is enumerable in reasonable time.
        if ctx.search_space_size() <= 1024 {
            group.bench_with_input(
                BenchmarkId::new("exhaustive", bench.name),
                &ctx,
                |b, ctx| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        exhaustive::solve(ctx, 12.5, &mut Pcg32::seed(seed))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
