//! Fleet re-plan throughput benchmark and guard for `caribou fleet`.
//!
//! The criterion group measures multi-tenant solving (HBSS over the
//! shared cross-app estimate cache) in app·hours per second, cold- and
//! warm-cache. The guard at the end enforces the fleet contract:
//!
//! * full-fleet schedules are bit-identical at 1 and 4 workers;
//! * the cold solve's cross-app cache hit rate clears a floor (species
//!   sharing is load-bearing, not incidental);
//! * a warm re-solve adds no cache misses (every estimate is reused);
//! * incremental re-solve after a single-hour revision matches the
//!   from-scratch schedule while re-solving strictly fewer cells;
//! * measured single-worker throughput stays within 2x of the committed
//!   `BENCH_fleet.json` baseline (and above an absolute floor).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use caribou_core::fleet::{
    replan_incremental, solve_fleet, FleetConfig, FleetEnv, PerturbOp, Perturbation,
};
use caribou_solver::engine::EstimateCache;
use caribou_workloads::fleet::{generate_fleet, FleetApp};
use criterion::{criterion_group, BenchmarkId, Criterion};

/// Absolute floor (app·hours/second, release build, 1 worker) under which
/// fleet solving has regressed badly on any plausible machine.
const THROUGHPUT_FLOOR: f64 = 100.0;

/// Minimum cold-cache cross-app hit rate: HBSS revisits plus species
/// sharing must reuse at least this fraction of estimate lookups.
const COLD_HIT_RATE_FLOOR: f64 = 0.30;

fn config(apps: usize, hours: usize, workers: usize) -> FleetConfig {
    FleetConfig {
        apps,
        hours,
        workers,
        seed: 42,
        ..FleetConfig::default()
    }
}

fn fixture(cfg: &FleetConfig) -> (FleetEnv, Vec<FleetApp>) {
    let env = FleetEnv::new(cfg.seed, cfg.hours);
    let apps = generate_fleet(cfg.seed, cfg.apps, &env.universe);
    (env, apps)
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);
    let cfg = config(24, 6, 1);
    let (env, apps) = fixture(&cfg);
    group.bench_function(BenchmarkId::new("solve", "24x6_cold"), |b| {
        b.iter(|| {
            let cache = EstimateCache::shared(cfg.cache_capacity);
            black_box(solve_fleet(&apps, &env, &cfg, &cache).schedule.digest())
        });
    });
    let warm: Arc<EstimateCache> = EstimateCache::shared(cfg.cache_capacity);
    solve_fleet(&apps, &env, &cfg, &warm);
    group.bench_function(BenchmarkId::new("solve", "24x6_warm"), |b| {
        b.iter(|| black_box(solve_fleet(&apps, &env, &cfg, &warm).schedule.digest()));
    });
    group.finish();
}

/// Hard guard on the fleet contract plus the committed throughput
/// baseline.
fn guard_fleet() {
    let cfg1 = config(32, 8, 1);
    let (env, apps) = fixture(&cfg1);

    // Bit-identical schedules at 1 and 4 workers, over separate caches.
    let cache1 = EstimateCache::shared(cfg1.cache_capacity);
    let r1 = solve_fleet(&apps, &env, &cfg1, &cache1);
    let cfg4 = config(32, 8, 4);
    let cache4 = EstimateCache::shared(cfg4.cache_capacity);
    let r4 = solve_fleet(&apps, &env, &cfg4, &cache4);
    assert_eq!(
        r1.schedule, r4.schedule,
        "worker count changed the fleet schedule"
    );
    assert_eq!(r1.schedule.digest(), r4.schedule.digest());

    // Cold cross-app hit rate: species sharing must be doing real work.
    let (hits, misses) = (cache1.hit_count() as f64, cache1.miss_count() as f64);
    let cold_rate = hits / (hits + misses).max(1.0);
    println!("fleet/guard: cold hit rate {:.1}%", cold_rate * 100.0);
    assert!(
        cold_rate >= COLD_HIT_RATE_FLOOR,
        "cold cache hit rate {cold_rate:.3} below floor {COLD_HIT_RATE_FLOOR}"
    );

    // Warm re-solve: identical schedule, zero new misses.
    let misses_before = cache1.miss_count();
    let warm = solve_fleet(&apps, &env, &cfg1, &cache1);
    assert_eq!(warm.schedule, r1.schedule, "warm re-solve diverged");
    assert_eq!(
        cache1.miss_count(),
        misses_before,
        "warm re-solve recomputed cached estimates"
    );

    // Incremental equivalence: revise one (hour, region), re-solve only
    // the dirty cells, match from-scratch bit-for-bit.
    let perturbs = vec![Perturbation {
        hour: 3,
        region: Some(env.universe[2]),
        op: PerturbOp::Scale(2.0),
    }];
    let mut revised = FleetEnv::new(cfg1.seed, cfg1.hours);
    revised.apply_perturbations(&perturbs);
    let inc = replan_incremental(&apps, &revised, &cfg1, &cache1, &r1.schedule, &perturbs);
    let scratch = solve_fleet(
        &apps,
        &revised,
        &cfg1,
        &EstimateCache::shared(cfg1.cache_capacity),
    );
    assert_eq!(
        inc.schedule, scratch.schedule,
        "incremental != from-scratch"
    );
    assert!(
        inc.solved_cells < cfg1.apps * cfg1.hours,
        "incremental re-solve did not shrink the solve set"
    );

    // Throughput: best of 3 cold single-worker solves.
    let mut best_s = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let cache = EstimateCache::shared(cfg1.cache_capacity);
        black_box(solve_fleet(&apps, &env, &cfg1, &cache).schedule.digest());
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    let throughput = (cfg1.apps * cfg1.hours) as f64 / best_s;
    println!(
        "fleet/guard: {throughput:.0} app-hours/s (1 worker, {}x{} cold, best of 3)",
        cfg1.apps, cfg1.hours
    );
    assert!(
        throughput >= THROUGHPUT_FLOOR,
        "fleet throughput {throughput:.0} app-hours/s below floor {THROUGHPUT_FLOOR:.0}"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    if let Some((committed_tp, committed_rate)) = read_baseline(path) {
        println!(
            "fleet/guard: committed baseline {committed_tp:.0} app-hours/s, {:.1}% hit rate",
            committed_rate * 100.0
        );
        assert!(
            throughput >= committed_tp / 2.0,
            "fleet throughput {throughput:.0} fell below half the committed baseline {committed_tp:.0}"
        );
        assert!(
            cold_rate >= committed_rate - 0.10,
            "cold hit rate {cold_rate:.3} fell more than 10pp below committed {committed_rate:.3}"
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"app_hours_per_s_1w\": {throughput:.0},\n  \"cold_hit_rate\": {cold_rate:.3},\n  \"cores\": {cores}\n}}\n"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("fleet/guard: could not write {path}: {e}");
    }
}

fn read_baseline(path: &str) -> Option<(f64, f64)> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    Some((
        value.get("app_hours_per_s_1w")?.as_f64()?,
        value.get("cold_hit_rate")?.as_f64()?,
    ))
}

criterion_group!(benches, bench_fleet);

fn main() {
    benches();
    guard_fleet();
}
