//! Contingency-failover overhead: installing a precomputed fallback
//! table must not tax the happy path. While every region is healthy the
//! per-request cost is two counter branches — `breaker_engaged()` plus
//! `fallback_engaged()` — and a hand-rolled guard at the end of this
//! bench fails the run if that combined check ever exceeds the same
//! 10 ns budget the bare breaker is held to.

use std::hint::black_box;
use std::time::Instant;

use caribou_exec::router::InvocationRouter;
use caribou_model::plan::{
    ContingencyEntry, ContingencyTable, DeploymentPlan, Exclusion, HourlyPlans,
};
use caribou_model::region::{Provider, RegionId};
use criterion::{criterion_group, Criterion};

fn plans_on(region: RegionId) -> HourlyPlans {
    HourlyPlans::hourly(
        (0..24)
            .map(|_| DeploymentPlan::uniform(4, region))
            .collect(),
        0.0,
        1e12,
    )
}

/// A three-entry table mirroring what `plan --contingency 3` produces:
/// one provider-wide fallback and two single-region ones.
fn table() -> ContingencyTable {
    let entry = |exclusion: Exclusion, excluded: Vec<RegionId>, to: RegionId| ContingencyEntry {
        exclusion,
        excluded_regions: excluded,
        plans: plans_on(to),
        metric: 1.0,
    };
    ContingencyTable {
        entries: vec![
            entry(
                Exclusion::Provider(Provider::Gcp),
                vec![RegionId(3), RegionId(4)],
                RegionId(1),
            ),
            entry(
                Exclusion::Region(RegionId(4)),
                vec![RegionId(4)],
                RegionId(2),
            ),
            entry(
                Exclusion::Region(RegionId(3)),
                vec![RegionId(3)],
                RegionId(1),
            ),
        ],
    }
}

fn topology() -> Vec<(RegionId, Provider)> {
    vec![
        (RegionId(0), Provider::Aws),
        (RegionId(1), Provider::Aws),
        (RegionId(2), Provider::Aws),
        (RegionId(3), Provider::Gcp),
        (RegionId(4), Provider::Gcp),
    ]
}

fn armed_router() -> InvocationRouter {
    let mut router = InvocationRouter::new(RegionId(0), 4);
    router.activate(plans_on(RegionId(4)));
    router.set_contingency(table(), topology());
    router
}

fn bench_contingency(c: &mut Criterion) {
    let mut healthy = armed_router();
    c.bench_function("contingency/route_healthy", |b| {
        b.iter(|| black_box(healthy.route(black_box(1000.0))));
    });

    let mut failed_over = armed_router();
    for _ in 0..3 {
        failed_over.record_failure(RegionId(4), 1000.0);
    }
    c.bench_function("contingency/route_failed_over", |b| {
        b.iter(|| black_box(failed_over.route(black_box(1000.0))));
    });

    let armed = armed_router();
    c.bench_function("contingency/happy_path_check", |b| {
        b.iter(|| {
            let r = black_box(&armed);
            black_box(r.breaker_engaged() || r.fallback_engaged())
        });
    });
}

/// Hard guard: with a contingency table installed and every region
/// healthy, the combined `breaker_engaged() || fallback_engaged()`
/// check must stay under 10 ns per routing decision — the contingency
/// subsystem rides the existing breaker budget, it does not get its
/// own. Best-of-batches, as scheduling noise only ever adds time.
fn guard_contingency_happy_path() {
    let router = armed_router();
    assert!(!router.breaker_engaged(), "healthy router: no breaker");
    assert!(!router.fallback_engaged(), "healthy router: no fallback");
    const ITERS: u64 = 4_000_000;
    let mut best_ns = f64::INFINITY;
    for _ in 0..12 {
        let start = Instant::now();
        let mut any = false;
        for _ in 0..ITERS {
            let r = black_box(&router);
            any |= r.breaker_engaged() || r.fallback_engaged();
        }
        black_box(any);
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        best_ns = best_ns.min(ns);
    }
    println!("contingency/happy_path_guard: best {best_ns:.3} ns per check");
    assert!(
        best_ns < 10.0,
        "contingency happy-path check took {best_ns:.2} ns per routing decision (budget: 10 ns)"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_contingency.json");
    if let Some(committed_ns) = read_baseline(path) {
        println!("contingency/happy_path_guard: committed baseline {committed_ns:.3} ns");
        assert!(
            best_ns <= (committed_ns * 4.0).max(2.0),
            "happy-path check {best_ns:.3} ns regressed past 4x the committed {committed_ns:.3} ns"
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"happy_path_ns\": {best_ns:.3},\n  \"budget_ns\": 10.0,\n  \"cores\": {cores}\n}}\n"
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("contingency/happy_path_guard: could not write {path}: {e}");
    }
}

fn read_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    value.get("happy_path_ns")?.as_f64()
}

criterion_group!(benches, bench_contingency);

fn main() {
    benches();
    guard_contingency_happy_path();
}
