//! Substrate micro-benchmarks: pub/sub publish, KV atomic update (the
//! synchronization-node primitive), Holt-Winters fitting, and the HBSS
//! neighbour-generation hot path via the PCG generator.

use caribou_carbon::forecast::HoltWinters;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_model::region::RegionCatalog;
use caribou_model::rng::Pcg32;
use caribou_simcloud::kv::KvStore;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::pubsub::{PubSub, TopicKey};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pubsub_publish(c: &mut Criterion) {
    let cat = RegionCatalog::aws_default();
    let lm = LatencyModel::from_catalog(&cat);
    let mut ps = PubSub::new();
    let east = cat.id_of("us-east-1").unwrap();
    let west = cat.id_of("us-west-2").unwrap();
    let key = TopicKey {
        workflow: "wf".into(),
        stage: "a".into(),
        region: west,
    };
    ps.create_topic(key.clone());
    c.bench_function("substrate/pubsub_publish_cross_region", |b| {
        let mut rng = Pcg32::seed(1);
        b.iter(|| ps.publish(&key, east, 2048.0, &lm, &mut rng));
    });
}

fn bench_kv_atomic_update(c: &mut Criterion) {
    let cat = RegionCatalog::aws_default();
    let lm = LatencyModel::from_catalog(&cat);
    let mut kv = KvStore::new();
    let east = cat.id_of("us-east-1").unwrap();
    kv.create_table("sync", east);
    c.bench_function("substrate/kv_atomic_update", |b| {
        let mut rng = Pcg32::seed(2);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            kv.atomic_update(
                "sync",
                &format!("k{}", i % 64),
                east,
                &lm,
                &mut rng,
                |prev| {
                    let n = prev.map(|b| b.len()).unwrap_or(0);
                    bytes::Bytes::from(vec![b'x'; (n + 1).min(32)])
                },
            )
        });
    });
}

fn bench_holt_winters_fit(c: &mut Criterion) {
    let synth = SyntheticCarbonSource::aws_calibrated(3);
    let data: Vec<f64> = (0..168)
        .map(|h| synth.zone_intensity("US-CAL-CISO", h as f64 + 0.5).unwrap())
        .collect();
    c.bench_function("substrate/holt_winters_fit_week", |b| {
        b.iter(|| HoltWinters::fit(&data, 24));
    });
    let hw = HoltWinters::fit(&data, 24);
    c.bench_function("substrate/holt_winters_forecast_48h", |b| {
        b.iter(|| hw.forecast(48));
    });
}

fn bench_synth_intensity(c: &mut Criterion) {
    let synth = SyntheticCarbonSource::aws_calibrated(4);
    c.bench_function("substrate/synth_intensity_lookup", |b| {
        let mut h = 0.0f64;
        b.iter(|| {
            h += 0.37;
            synth.zone_intensity("US-MIDA-PJM", h).unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_pubsub_publish,
    bench_kv_atomic_update,
    bench_holt_winters_fit,
    bench_synth_intensity
);
criterion_main!(benches);
