//! Invocation-router overhead: the routing decision sits on the hot path
//! of every request, so the circuit breaker must cost nothing while every
//! region is healthy. The happy-path check (`breaker_engaged`) is a single
//! branch on a counter; a hand-rolled guard at the end of this bench fails
//! the run if it ever exceeds 10 ns per routing decision.

use std::hint::black_box;
use std::time::Instant;

use caribou_exec::router::InvocationRouter;
use caribou_model::plan::{DeploymentPlan, HourlyPlans};
use caribou_model::region::RegionId;
use criterion::{criterion_group, Criterion};

fn offload_plans() -> HourlyPlans {
    HourlyPlans::hourly(
        (0..24)
            .map(|_| DeploymentPlan::uniform(4, RegionId(4)))
            .collect(),
        0.0,
        1e12,
    )
}

fn bench_route(c: &mut Criterion) {
    let mut home_only = InvocationRouter::new(RegionId(0), 4);
    c.bench_function("router/route_home_only", |b| {
        b.iter(|| black_box(home_only.route(black_box(1000.0))));
    });

    let mut with_plan = InvocationRouter::new(RegionId(0), 4);
    with_plan.activate(offload_plans());
    c.bench_function("router/route_active_plan", |b| {
        b.iter(|| black_box(with_plan.route(black_box(1000.0))));
    });

    let mut tripped = InvocationRouter::new(RegionId(0), 4);
    tripped.activate(offload_plans());
    for _ in 0..3 {
        tripped.record_failure(RegionId(4), 1000.0);
    }
    c.bench_function("router/route_breaker_open", |b| {
        b.iter(|| black_box(tripped.route(black_box(1000.0))));
    });

    let healthy = InvocationRouter::new(RegionId(0), 4);
    c.bench_function("router/breaker_engaged_check", |b| {
        b.iter(|| black_box(black_box(&healthy).breaker_engaged()));
    });
}

/// Hard guard on the breaker's happy-path overhead: best-of-batches
/// wall-clock must stay under 10 ns per check. Best-of is the right
/// statistic for a lower-bound guard — scheduling noise only ever adds
/// time.
fn guard_breaker_happy_path() {
    let mut router = InvocationRouter::new(RegionId(0), 4);
    router.activate(offload_plans());
    assert!(!router.breaker_engaged(), "healthy router: no breaker");
    const ITERS: u64 = 4_000_000;
    let mut best_ns = f64::INFINITY;
    for _ in 0..12 {
        let start = Instant::now();
        let mut any = false;
        for _ in 0..ITERS {
            any |= black_box(&router).breaker_engaged();
        }
        black_box(any);
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        best_ns = best_ns.min(ns);
    }
    println!("router/breaker_happy_path_guard: best {best_ns:.3} ns per check");
    assert!(
        best_ns < 10.0,
        "breaker happy-path check took {best_ns:.2} ns per routing decision (budget: 10 ns)"
    );
}

criterion_group!(benches, bench_route);

fn main() {
    benches();
    guard_breaker_happy_path();
}
