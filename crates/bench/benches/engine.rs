//! Execution-engine micro-benchmarks: one full invocation per workload,
//! single-region vs cross-region plans, and per-orchestrator overhead.

use caribou_bench::harness::ExpEnv;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::dag::NodeId;
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::benchmarks::{all_benchmarks, video_analytics, InputSize};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_invocation_per_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/invoke");
    for bench in all_benchmarks(InputSize::Small) {
        let mut env = ExpEnv::new(66);
        let app = WorkflowApp {
            name: bench.dag.name().into(),
            dag: bench.dag.clone(),
            profile: bench.profile.clone(),
            home: env.home,
        };
        let plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
        let carbon = env.carbon.clone();
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut env.cloud, &app, &plan);
        group.bench_function(BenchmarkId::from_parameter(bench.name), |b| {
            let mut rng = Pcg32::seed(1);
            let mut inv = 0u64;
            b.iter(|| {
                inv += 1;
                engine.invoke(&mut env.cloud, &app, &plan, inv, 100.0, &mut rng)
            });
        });
    }
    group.finish();
}

fn bench_cross_region_invocation(c: &mut Criterion) {
    let bench = video_analytics(InputSize::Small);
    let mut group = c.benchmark_group("engine/placement");
    for (label, remote) in [("single_region", false), ("cross_region", true)] {
        let mut env = ExpEnv::new(67);
        let app = WorkflowApp {
            name: bench.dag.name().into(),
            dag: bench.dag.clone(),
            profile: bench.profile.clone(),
            home: env.home,
        };
        let mut plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
        if remote {
            let ca = env.region("ca-central-1");
            for i in 1..bench.dag.node_count() {
                plan.set(NodeId(i as u32), ca);
            }
        }
        let carbon = env.carbon.clone();
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut env.cloud, &app, &plan);
        group.bench_function(label, |b| {
            let mut rng = Pcg32::seed(2);
            let mut inv = 0u64;
            b.iter(|| {
                inv += 1;
                engine.invoke(&mut env.cloud, &app, &plan, inv, 100.0, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_invocation_per_workload,
    bench_cross_region_invocation
);
criterion_main!(benches);
