//! Shared experiment infrastructure for the figure/table binaries.
//!
//! The experiment pipeline mirrors the paper's methodology (§9.1):
//! deployment plans are solved on *forecast* carbon data (Holt-Winters on
//! the trailing week) and evaluated on *actual* data over the evaluation
//! week (2023-10-15 .. 2023-10-21 — simulation hours 0..168); carbon is
//! reported normalized to the coarse `us-east-1` deployment; both the
//! best-case and worst-case transmission-carbon scenarios are reported.

use std::collections::HashMap;

use caribou_carbon::source::{ForecastingSource, RegionalSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{
    DefaultModels, EstimateSummary, MonteCarloConfig, MonteCarloEstimator,
};
use caribou_model::constraints::{Constraints, Objective, Tolerances};
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::{HbssParams, HbssSolver};
use caribou_workloads::benchmarks::Benchmark;

/// Hours in the evaluation week.
pub const WEEK_HOURS: usize = 168;

/// The experiment environment: cloud, calibrated carbon, region universe.
pub struct ExpEnv {
    /// Simulated cloud (latency, pricing, compute models).
    pub cloud: SimCloud,
    /// Actual carbon data (Electricity-Maps-calibrated synthetic).
    pub carbon: RegionalSource,
    /// The four §9.1 evaluation regions.
    pub regions: Vec<RegionId>,
    /// Home region (`us-east-1`).
    pub home: RegionId,
}

impl ExpEnv {
    /// Builds the standard environment.
    pub fn new(seed: u64) -> Self {
        let cloud = SimCloud::aws(seed);
        let carbon = RegionalSource::new(
            &cloud.regions,
            SyntheticCarbonSource::aws_calibrated(20231015),
        )
        .expect("the default catalog's grid zones are all calibrated");
        let regions = cloud.regions.evaluation_regions();
        let home = cloud.region("us-east-1").unwrap();
        ExpEnv {
            cloud,
            carbon,
            regions,
            home,
        }
    }

    /// Region id by name; experiment setup uses fixed catalog names.
    pub fn region(&self, name: &str) -> RegionId {
        self.cloud
            .region(name)
            .expect("experiment regions come from the default catalog")
    }

    /// Region catalog.
    pub fn catalog(&self) -> &RegionCatalog {
        &self.cloud.regions
    }
}

/// Step (hours) between evaluation points; set `CARIBOU_FAST=1` to
/// coarsen experiments for smoke runs.
pub fn hour_step() -> usize {
    if std::env::var("CARIBOU_FAST").is_ok_and(|v| v == "1") {
        12
    } else {
        3
    }
}

/// Monte Carlo budget for experiment evaluation.
pub fn mc_config() -> MonteCarloConfig {
    MonteCarloConfig {
        batch: 100,
        max_samples: 400,
        cv_threshold: 0.08,
    }
}

/// HBSS parameters for experiment solving (slightly tightened iteration
/// cap to keep full-figure runs quick).
pub fn hbss_params() -> HbssParams {
    HbssParams {
        max_iterations: 150,
        ..HbssParams::default()
    }
}

/// Default experiment tolerances: 10% on tail latency, generous on cost
/// (the paper's QoS studies vary only the runtime tolerance, §9.4),
/// unbounded carbon (the solver minimizes it).
pub fn default_tolerances() -> Tolerances {
    Tolerances {
        latency: 0.10,
        cost: 1.0,
        carbon: f64::INFINITY,
    }
}

/// Aggregated metrics of one deployment strategy over the week.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrategyResult {
    /// Mean carbon per invocation, gCO₂eq.
    pub carbon_g: f64,
    /// Execution-only component.
    pub exec_carbon_g: f64,
    /// Transmission-only component.
    pub trans_carbon_g: f64,
    /// Mean end-to-end latency, seconds.
    pub latency_mean_s: f64,
    /// Mean tail (p95) end-to-end latency, seconds.
    pub latency_p95_s: f64,
    /// Mean cost per invocation, USD.
    pub cost_usd: f64,
}

impl StrategyResult {
    fn accumulate(&mut self, e: &EstimateSummary) {
        self.carbon_g += e.carbon.mean;
        self.exec_carbon_g += e.exec_carbon_mean;
        self.trans_carbon_g += e.trans_carbon_mean;
        self.latency_mean_s += e.latency.mean;
        self.latency_p95_s += e.latency.p95;
        self.cost_usd += e.cost.mean;
    }

    fn scale(&mut self, f: f64) {
        self.carbon_g *= f;
        self.exec_carbon_g *= f;
        self.trans_carbon_g *= f;
        self.latency_mean_s *= f;
        self.latency_p95_s *= f;
        self.cost_usd *= f;
    }
}

/// Evaluates `plan_at(hour)` with the *actual* carbon source at each
/// sampled hour of the evaluation week and averages.
pub fn eval_over_week(
    env: &ExpEnv,
    bench: &Benchmark,
    scenario: TransmissionScenario,
    mut plan_at: impl FnMut(f64) -> DeploymentPlan,
    seed: u64,
) -> StrategyResult {
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &env.cloud.compute,
        latency: &env.cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let mut total = StrategyResult::default();
    let mut rng = Pcg32::seed_stream(seed, 0xe7a1);
    let step = hour_step();
    let mut n = 0usize;
    let mut hour = 0usize;
    while hour < WEEK_HOURS {
        let h = hour as f64 + 0.5;
        let plan = plan_at(h);
        let est = MonteCarloEstimator {
            dag: &bench.dag,
            profile: &bench.profile,
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(scenario),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            home: env.home,
            config: mc_config(),
        };
        let summary = est.estimate(&plan, h, &mut rng);
        total.accumulate(&summary);
        n += 1;
        hour += step;
    }
    total.scale(1.0 / n.max(1) as f64);
    total
}

/// Caches one solved plan per sampled hour so the solver runs once per
/// point, on forecast data fitted at that day's start — the paper's
/// solve-on-forecast / evaluate-on-actual split.
pub struct FineSolver<'e> {
    env: &'e ExpEnv,
    bench: &'e Benchmark,
    region_set: Vec<RegionId>,
    permitted: Vec<Vec<RegionId>>,
    scenario: TransmissionScenario,
    tolerances: Tolerances,
    cache: HashMap<usize, DeploymentPlan>,
    seed: u64,
}

impl<'e> FineSolver<'e> {
    /// Creates a solver over an explicit region set.
    pub fn new(
        env: &'e ExpEnv,
        bench: &'e Benchmark,
        region_set: &[RegionId],
        scenario: TransmissionScenario,
        tolerances: Tolerances,
        seed: u64,
    ) -> Self {
        let mut constraints = Constraints::unconstrained(bench.dag.node_count());
        constraints.tolerances = tolerances;
        Self::with_constraints(env, bench, region_set, &constraints, scenario, seed)
    }

    /// Creates a solver honoring explicit per-node constraints.
    pub fn with_constraints(
        env: &'e ExpEnv,
        bench: &'e Benchmark,
        region_set: &[RegionId],
        constraints: &Constraints,
        scenario: TransmissionScenario,
        seed: u64,
    ) -> Self {
        let permitted = constraints
            .permitted_regions(&bench.dag, region_set, &env.cloud.regions, env.home)
            .expect("valid constraints");
        let mut region_set: Vec<RegionId> = region_set.to_vec();
        if !region_set.contains(&env.home) {
            region_set.push(env.home);
        }
        FineSolver {
            env,
            bench,
            region_set,
            permitted,
            scenario,
            tolerances: constraints.tolerances,
            cache: HashMap::new(),
            seed,
        }
    }

    /// The solved plan for the given absolute hour (forecast-based).
    pub fn plan_at(&mut self, hour: f64) -> DeploymentPlan {
        let key = hour as usize;
        if let Some(p) = self.cache.get(&key) {
            return p.clone();
        }
        let day_start = (hour / 24.0).floor() * 24.0;
        let forecast = ForecastingSource::fit(&self.env.carbon, &self.region_set, day_start, 48);
        let models = DefaultModels {
            profile: &self.bench.profile,
            runtime: &self.env.cloud.compute,
            latency: &self.env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &self.bench.dag,
            profile: &self.bench.profile,
            permitted: &self.permitted,
            home: self.env.home,
            objective: Objective::Carbon,
            tolerances: self.tolerances,
            carbon_source: &forecast,
            carbon_model: CarbonModel::new(self.scenario),
            cost_model: CostModel::new(&self.env.cloud.pricing),
            models: &models,
            mc_config: mc_config(),
        };
        let solver = HbssSolver {
            params: hbss_params(),
        };
        let mut rng = Pcg32::seed_stream(self.seed ^ key as u64, 0x501e);
        let plan = solver.solve(&ctx, hour, &mut rng).best;
        self.cache.insert(key, plan.clone());
        plan
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Writes machine-readable experiment output under `results/`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(s) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, s);
            eprintln!("[wrote {}]", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_workloads::benchmarks::{dna_visualization, InputSize};

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eval_over_week_produces_positive_metrics() {
        std::env::set_var("CARIBOU_FAST", "1");
        let env = ExpEnv::new(1);
        let bench = dna_visualization(InputSize::Small);
        let home = env.home;
        let r = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::BEST,
            |_| DeploymentPlan::uniform(1, home),
            1,
        );
        assert!(r.carbon_g > 0.0);
        assert!(r.latency_mean_s > 0.0);
        assert!(r.latency_p95_s >= r.latency_mean_s);
        assert!(r.cost_usd > 0.0);
    }

    #[test]
    fn fine_solver_caches_plans() {
        std::env::set_var("CARIBOU_FAST", "1");
        let env = ExpEnv::new(2);
        let bench = dna_visualization(InputSize::Small);
        let regions = env.regions.clone();
        let mut solver = FineSolver::new(
            &env,
            &bench,
            &regions,
            TransmissionScenario::BEST,
            default_tolerances(),
            1,
        );
        let a = solver.plan_at(10.5);
        let b = solver.plan_at(10.9);
        assert_eq!(a, b, "same hour bucket returns the cached plan");
    }
}
