//! Ablation: scheduling on average (ACI) versus marginal (MCI) carbon
//! intensity — the §7.1 design choice the paper flags for "continued
//! research".
//!
//! Solves the Fine(all) deployment once against the ACI signal and once
//! against a synthetic MCI signal, then accounts the resulting emissions
//! under *both* signals (a 2×2 matrix per benchmark). Expected shape,
//! echoing the MCI-vs-ACI literature the paper cites: ACI-driven plans
//! chase the hydro grid aggressively; MCI-driven plans see a much smaller
//! cross-region differential and shift far less; each plan looks best
//! under the signal that produced it — "it can lead to different
//! decisions".

use caribou_bench::harness::{default_tolerances, mc_config, write_json, ExpEnv};
use caribou_carbon::marginal::MarginalSource;
use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloEstimator};
use caribou_model::constraints::{Constraints, Objective};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};

fn main() {
    let env = ExpEnv::new(33);
    let mci = MarginalSource::new(env.carbon.clone());
    let hour = 12.5;

    println!("Signal ablation — plans solved under ACI vs MCI, accounted under both");
    println!(
        "{:<24}{:<8}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "benchmark", "solved", "g (ACI)", "g (MCI)", "home ACI", "home MCI", "regions"
    );
    let mut rows = Vec::new();
    let mut disagreements = 0usize;
    let mut total = 0usize;
    for bench in all_benchmarks(InputSize::Small) {
        let mut constraints = Constraints::unconstrained(bench.dag.node_count());
        constraints.tolerances = default_tolerances();
        let permitted = constraints
            .permitted_regions(&bench.dag, &env.regions, &env.cloud.regions, env.home)
            .unwrap();
        let models = DefaultModels {
            profile: &bench.profile,
            runtime: &env.cloud.compute,
            latency: &env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };

        // Solve once per signal.
        let solve_with = |source: &dyn CarbonDataSource, seed: u64| -> DeploymentPlan {
            let ctx = SolverContext {
                dag: &bench.dag,
                profile: &bench.profile,
                permitted: &permitted,
                home: env.home,
                objective: Objective::Carbon,
                tolerances: default_tolerances(),
                carbon_source: &source,
                carbon_model: CarbonModel::new(TransmissionScenario::BEST),
                cost_model: CostModel::new(&env.cloud.pricing),
                models: &models,
                mc_config: mc_config(),
            };
            HbssSolver::new()
                .solve(&ctx, hour, &mut Pcg32::seed(seed))
                .best
        };
        let plan_aci = solve_with(&env.carbon, 1);
        let plan_mci = solve_with(&mci, 2);

        // Account each plan under each signal.
        let account = |plan: &DeploymentPlan, source: &dyn CarbonDataSource, seed: u64| -> f64 {
            let est = MonteCarloEstimator {
                dag: &bench.dag,
                profile: &bench.profile,
                carbon_source: &source,
                carbon_model: CarbonModel::new(TransmissionScenario::BEST),
                cost_model: CostModel::new(&env.cloud.pricing),
                models: &models,
                home: env.home,
                config: mc_config(),
            };
            est.estimate(plan, hour, &mut Pcg32::seed(seed)).carbon.mean
        };
        let home_plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
        let home_aci = account(&home_plan, &env.carbon, 3);
        let home_mci = account(&home_plan, &mci, 4);
        for (label, plan) in [("ACI", &plan_aci), ("MCI", &plan_mci)] {
            let g_aci = account(plan, &env.carbon, 5);
            let g_mci = account(plan, &mci, 6);
            let regions: Vec<String> = plan
                .regions_used()
                .iter()
                .map(|r| env.cloud.regions.name(*r).to_string())
                .collect();
            println!(
                "{:<24}{:<8}{:>12.3e}{:>12.3e}{:>12.3e}{:>12.3e}  {:?}",
                bench.name, label, g_aci, g_mci, home_aci, home_mci, regions
            );
            rows.push(serde_json::json!({
                "benchmark": bench.name,
                "solved_under": label,
                "carbon_under_aci": g_aci,
                "carbon_under_mci": g_mci,
                "home_under_aci": home_aci,
                "home_under_mci": home_mci,
                "regions": regions,
            }));
        }
        total += 1;
        if plan_aci != plan_mci {
            disagreements += 1;
        }
    }
    println!(
        "\nPlans differ between signals for {disagreements}/{total} benchmarks \
         (paper §7.1: MCI \"can lead to different decisions\")."
    );
    write_json("ablation_signal", &serde_json::Value::Array(rows));
}
