//! Table 1 — benchmark workflow structures, features, and input sizes.

use caribou_bench::harness::write_json;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};

fn main() {
    println!("Table 1 — benchmark workflows");
    println!(
        "{:<24}{:>7}{:>7}{:>6}{:>6}{:>14}{:>14}",
        "benchmark", "nodes", "edges", "sync", "cond", "small input", "large input"
    );
    let mut rows = Vec::new();
    let small = all_benchmarks(InputSize::Small);
    let large = all_benchmarks(InputSize::Large);
    for (s, l) in small.iter().zip(large.iter()) {
        let mark = |b: bool| if b { "yes" } else { "no" };
        let input_desc = |b: &caribou_workloads::benchmarks::Benchmark| -> String {
            let bytes = b.profile.input_bytes.mean()
                + b.profile
                    .nodes
                    .iter()
                    .map(|n| n.external_data_bytes)
                    .sum::<f64>();
            if bytes >= 1e6 {
                format!("{:.1} MB", bytes / 1e6)
            } else {
                format!("{:.0} KB", bytes / 1e3)
            }
        };
        println!(
            "{:<24}{:>7}{:>7}{:>6}{:>6}{:>14}{:>14}",
            s.name,
            s.dag.node_count(),
            s.dag.edge_count(),
            mark(s.dag.has_sync_nodes()),
            mark(s.dag.has_conditional_edges()),
            input_desc(s),
            input_desc(l),
        );
        rows.push(serde_json::json!({
            "benchmark": s.name,
            "nodes": s.dag.node_count(),
            "edges": s.dag.edge_count(),
            "sync": s.dag.has_sync_nodes(),
            "conditional": s.dag.has_conditional_edges(),
            "small_total_bytes": s.profile.input_bytes.mean(),
            "large_total_bytes": l.profile.input_bytes.mean(),
        }));
    }
    write_json("table1", &serde_json::Value::Array(rows));
}
