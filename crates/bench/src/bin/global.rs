//! Extension experiment: global region sets (§2.1's closing observation).
//!
//! "These observations are even more pronounced globally, due to the
//! increased diversity of energy sources, full daily lag for solar
//! generation, and opposite seasons" — this experiment extends the §9
//! setup beyond North America with the catalog's European, Australian,
//! and South American regions and compares the achievable savings (and the
//! latency price of chasing them) against the NA-only set.

use caribou_bench::harness::{eval_over_week, geomean, write_json, ExpEnv, FineSolver};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::constraints::Tolerances;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};

fn main() {
    let env = ExpEnv::new(44);
    let use1 = env.region("us-east-1");
    let na: Vec<_> = env.regions.clone();
    let global: Vec<_> = [
        "us-east-1",
        "us-west-1",
        "us-west-2",
        "ca-central-1",
        "eu-west-1",
        "eu-central-1",
        "ap-southeast-2",
        "sa-east-1",
    ]
    .iter()
    .map(|n| env.region(n))
    .collect();
    // Intercontinental shifting needs slack on the latency tolerance; this
    // is exactly the QoS trade-off of §9.4 at a larger scale.
    let tolerances = Tolerances {
        latency: 0.30,
        cost: 1.0,
        carbon: f64::INFINITY,
    };

    println!("Global extension — Fine(NA) vs Fine(global), best-case scenario");
    println!(
        "{:<24}{:<7}{:>10}{:>10}{:>12}{:>12}",
        "benchmark", "input", "NA norm", "glob norm", "NA p95 s", "glob p95 s"
    );
    let mut rows = Vec::new();
    let mut na_norms = Vec::new();
    let mut global_norms = Vec::new();
    for input in InputSize::ALL {
        for bench in all_benchmarks(input) {
            let scenario = TransmissionScenario::BEST;
            let base = eval_over_week(
                &env,
                &bench,
                scenario,
                |_| DeploymentPlan::uniform(bench.dag.node_count(), use1),
                1,
            );
            let mut na_solver = FineSolver::new(&env, &bench, &na, scenario, tolerances, 2);
            let na_res = eval_over_week(&env, &bench, scenario, |h| na_solver.plan_at(h), 3);
            let mut gl_solver = FineSolver::new(&env, &bench, &global, scenario, tolerances, 4);
            let gl_res = eval_over_week(&env, &bench, scenario, |h| gl_solver.plan_at(h), 5);
            let na_norm = na_res.carbon_g / base.carbon_g;
            let gl_norm = gl_res.carbon_g / base.carbon_g;
            println!(
                "{:<24}{:<7}{:>10.3}{:>10.3}{:>12.2}{:>12.2}",
                bench.name,
                input.label(),
                na_norm,
                gl_norm,
                na_res.latency_p95_s,
                gl_res.latency_p95_s
            );
            rows.push(serde_json::json!({
                "benchmark": bench.name,
                "input": input.label(),
                "na_norm": na_norm,
                "global_norm": gl_norm,
                "na_p95_s": na_res.latency_p95_s,
                "global_p95_s": gl_res.latency_p95_s,
            }));
            na_norms.push(na_norm);
            global_norms.push(gl_norm);
        }
    }
    let na_gm = geomean(&na_norms);
    let gl_gm = geomean(&global_norms);
    println!(
        "\nGeomean reduction: NA set {:.1}%, global set {:.1}%",
        (1.0 - na_gm) * 100.0,
        (1.0 - gl_gm) * 100.0
    );
    println!("(the global set should never do worse: it is a superset of the NA options)");
    write_json("global", &serde_json::Value::Array(rows));
}
