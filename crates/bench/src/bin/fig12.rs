//! Fig. 12 — Orchestration overhead: AWS Step Functions vs SNS vs Caribou
//! (§9.6).
//!
//! Executes every benchmark × input size 200 times in the home region
//! under each orchestrator and reports the mean workflow execution time.
//! Paper reference points (geometric means): Step Functions is 12.8%
//! (small) / 2.17% (large) faster than SNS; Caribou adds <1% over SNS and
//! 5.72% (small) / 2.71% (large) over Step Functions; overhead shrinks as
//! execution duration grows and grows with DAG complexity.

use caribou_bench::harness::{geomean, write_json, ExpEnv};
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};

const RUNS: usize = 600;

fn main() {
    println!("Fig. 12 — workflow execution time by orchestrator (seconds)");
    println!(
        "{:<24}{:<7}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "benchmark", "input", "stepfn", "sns", "caribou", "cb vs sns", "cb vs sf"
    );
    let mut rows = Vec::new();
    let mut ratios: Vec<(InputSize, f64, f64, f64)> = Vec::new();
    for input in InputSize::ALL {
        for bench in all_benchmarks(input) {
            let mut means = Vec::new();
            for orch in [
                Orchestrator::StepFunctions,
                Orchestrator::Sns,
                Orchestrator::Caribou,
            ] {
                let mut env = ExpEnv::new(12);
                env.cloud.compute.cold_start_prob = 0.0;
                let app = WorkflowApp {
                    name: bench.dag.name().into(),
                    dag: bench.dag.clone(),
                    profile: bench.profile.clone(),
                    home: env.home,
                };
                let plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
                let engine = ExecutionEngine {
                    carbon_source: &env.carbon,
                    carbon_model: CarbonModel::new(TransmissionScenario::BEST),
                    orchestrator: orch,
                };
                engine.provision(&mut env.cloud, &app, &plan);
                let mut rng = Pcg32::seed_stream(12, orch as u64 + 1);
                let mut total = 0.0;
                for i in 0..RUNS {
                    let out = engine.invoke(&mut env.cloud, &app, &plan, i as u64, 100.0, &mut rng);
                    total += out.e2e_latency_s;
                }
                means.push(total / RUNS as f64);
            }
            let (sf, sns, cb) = (means[0], means[1], means[2]);
            println!(
                "{:<24}{:<7}{:>10.3}{:>10.3}{:>10.3}{:>11.2}%{:>11.2}%",
                bench.name,
                input.label(),
                sf,
                sns,
                cb,
                (cb / sns - 1.0) * 100.0,
                (cb / sf - 1.0) * 100.0
            );
            rows.push(serde_json::json!({
                "benchmark": bench.name,
                "input": input.label(),
                "step_functions_s": sf,
                "sns_s": sns,
                "caribou_s": cb,
            }));
            ratios.push((input, sns / sf, cb / sns, cb / sf));
        }
    }

    for input in InputSize::ALL {
        let of = |f: fn(&(InputSize, f64, f64, f64)) -> f64| -> f64 {
            geomean(
                &ratios
                    .iter()
                    .filter(|r| r.0 == input)
                    .map(f)
                    .collect::<Vec<_>>(),
            )
        };
        let sns_vs_sf = of(|r| r.1);
        let cb_vs_sns = of(|r| r.2);
        let cb_vs_sf = of(|r| r.3);
        let paper = match input {
            InputSize::Small => "(paper: SNS +12.8% over SF; Caribou <1% over SNS, +5.72% over SF)",
            InputSize::Large => "(paper: SNS +2.17% over SF; Caribou <1% over SNS, +2.71% over SF)",
        };
        println!(
            "\nGeomean, {} inputs: SNS vs SF +{:.2}%; Caribou vs SNS +{:.2}%; Caribou vs SF +{:.2}%",
            input.label(),
            (sns_vs_sf - 1.0) * 100.0,
            (cb_vs_sns - 1.0) * 100.0,
            (cb_vs_sf - 1.0) * 100.0
        );
        println!("{paper}");
        rows.push(serde_json::json!({
            "summary": input.label(),
            "sns_vs_stepfn_pct": (sns_vs_sf - 1.0) * 100.0,
            "caribou_vs_sns_pct": (cb_vs_sns - 1.0) * 100.0,
            "caribou_vs_stepfn_pct": (cb_vs_sf - 1.0) * 100.0,
        }));
    }
    write_json("fig12", &serde_json::Value::Array(rows));
}
