//! Fig. 7 — Carbon normalized to `us-east-1` for coarse single-region
//! deployments and Caribou fine-grained deployments over different region
//! sets, for all five benchmarks × {small, large} inputs × {best, worst}
//! transmission-carbon scenarios.
//!
//! Paper reference points: fine-grained shifting over all available
//! regions reduces carbon by a geometric-mean 66.6% (best case) and 22.9%
//! (worst case); coarse deployment to a nearby region can *worsen*
//! emissions for transmission-heavy workloads (I1); Caribou avoids
//! offloading those (I2).
//!
//! Configurations are independent, so they run on all available cores.

use caribou_bench::harness::{
    default_tolerances, eval_over_week, geomean, write_json, ExpEnv, FineSolver, StrategyResult,
};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{all_benchmarks, Benchmark, InputSize};

struct ConfigResult {
    benchmark: &'static str,
    input: InputSize,
    scenario: &'static str,
    rows: Vec<(String, StrategyResult, f64)>,
    fine_all_norm: f64,
}

fn run_config(
    env: &ExpEnv,
    bench: &Benchmark,
    scen_name: &'static str,
    scenario: TransmissionScenario,
) -> ConfigResult {
    let use1 = env.region("us-east-1");
    let usw1 = env.region("us-west-1");
    let usw2 = env.region("us-west-2");
    let ca = env.region("ca-central-1");
    let coarse = [
        ("Coarse(us-east-1)", use1),
        ("Coarse(us-west-1)", usw1),
        ("Coarse(us-west-2)", usw2),
        ("Coarse(ca-central-1)", ca),
    ];
    let fine_sets: Vec<(&str, Vec<_>)> = vec![
        ("Fine(e1,w1)", vec![use1, usw1]),
        ("Fine(e1,w2)", vec![use1, usw2]),
        ("Fine(e1,w1,w2)", vec![use1, usw1, usw2]),
        ("Fine(e1,ca)", vec![use1, ca]),
        ("Fine(all)", vec![use1, usw1, usw2, ca]),
    ];

    let base = eval_over_week(
        env,
        bench,
        scenario,
        |_| DeploymentPlan::uniform(bench.dag.node_count(), use1),
        1,
    );
    let mut rows = Vec::new();
    rows.push(("Coarse(us-east-1)".to_string(), base, 1.0));
    for (name, region) in coarse.iter().skip(1) {
        let r = eval_over_week(
            env,
            bench,
            scenario,
            |_| DeploymentPlan::uniform(bench.dag.node_count(), *region),
            2,
        );
        rows.push((name.to_string(), r, r.carbon_g / base.carbon_g));
    }
    let mut fine_all_norm = 1.0;
    for (name, set) in &fine_sets {
        let mut solver = FineSolver::new(env, bench, set, scenario, default_tolerances(), 11);
        let r = eval_over_week(env, bench, scenario, |h| solver.plan_at(h), 3);
        let norm = r.carbon_g / base.carbon_g;
        rows.push((name.to_string(), r, norm));
        if *name == "Fine(all)" {
            fine_all_norm = norm;
        }
    }
    ConfigResult {
        benchmark: bench.name,
        input: bench.input,
        scenario: scen_name,
        rows,
        fine_all_norm,
    }
}

fn main() {
    let env = ExpEnv::new(7);
    let scenarios = [
        ("best", TransmissionScenario::BEST),
        ("worst", TransmissionScenario::WORST),
    ];
    let configs: Vec<(Benchmark, &'static str, TransmissionScenario)> = InputSize::ALL
        .into_iter()
        .flat_map(all_benchmarks)
        .flat_map(|b| scenarios.into_iter().map(move |(n, s)| (b.clone(), n, s)))
        .collect();

    // Fan the independent configurations out over the available cores.
    let results: Vec<ConfigResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .iter()
            .map(|(bench, scen_name, scenario)| {
                let env = &env;
                scope.spawn(move || run_config(env, bench, scen_name, *scenario))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    println!("Fig. 7 — carbon normalized to Coarse(us-east-1)");
    println!(
        "{:<24}{:<7}{:<7}{:<24}{:>10}{:>12}",
        "benchmark", "input", "txn", "strategy", "norm", "gCO2eq/inv"
    );
    let mut json_rows = Vec::new();
    let mut fine_all: Vec<(&str, f64)> = Vec::new();
    for c in &results {
        for (strategy, r, norm) in &c.rows {
            println!(
                "{:<24}{:<7}{:<7}{:<24}{:>10.3}{:>12.4e}",
                c.benchmark,
                c.input.label(),
                c.scenario,
                strategy,
                norm,
                r.carbon_g
            );
            json_rows.push(serde_json::json!({
                "benchmark": c.benchmark,
                "input": c.input.label(),
                "scenario": c.scenario,
                "strategy": strategy,
                "normalized_carbon": norm,
                "carbon_g": r.carbon_g,
                "exec_carbon_g": r.exec_carbon_g,
                "trans_carbon_g": r.trans_carbon_g,
                "latency_mean_s": r.latency_mean_s,
                "cost_usd": r.cost_usd,
            }));
        }
        fine_all.push((c.scenario, c.fine_all_norm));
    }

    for scen in ["best", "worst"] {
        let vals: Vec<f64> = fine_all
            .iter()
            .filter(|(s, _)| *s == scen)
            .map(|(_, v)| *v)
            .collect();
        let gm = geomean(&vals);
        let target = if scen == "best" { "66.6%" } else { "22.9%" };
        println!(
            "\nGeomean reduction, Fine(all), {scen}-case: {:.1}% (paper: {target})",
            (1.0 - gm) * 100.0
        );
        json_rows.push(serde_json::json!({
            "summary": format!("geomean_reduction_{scen}"),
            "value_pct": (1.0 - gm) * 100.0,
        }));
    }
    write_json("fig7", &serde_json::Value::Array(json_rows));
}
