//! Ablation: cold-start transients after a migration.
//!
//! With the stateful warm-container pool enabled, a freshly activated
//! offload region starts with no warm containers: the first invocations
//! after a migration pay cold starts until traffic warms the deployment —
//! an operational cost of geospatial shifting the paper's latency model
//! folds into its execution-time distributions. This ablation runs the
//! same migration moment with the probabilistic and the stateful models
//! and reports the latency around the switch.

use caribou_bench::harness::{write_json, ExpEnv};
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::warm::WarmPool;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

const BEFORE: usize = 60;
const AFTER: usize = 60;

fn run(warm_pool: bool) -> (f64, f64, f64) {
    let mut env = ExpEnv::new(66);
    // Deterministic execution times isolate the cold-start transient from
    // workload noise.
    env.cloud.compute.exec_sigma = 0.0;
    if warm_pool {
        env.cloud.warm = WarmPool::enabled(600.0);
        env.cloud.compute.cold_start_prob = 0.0; // unused when pool drives
    } else {
        env.cloud.compute.cold_start_prob = 0.02;
    }
    let mut bench = text2speech_censoring(InputSize::Small);
    for n in &mut bench.profile.nodes {
        n.exec_time = caribou_model::dist::DistSpec::Constant {
            value: n.exec_time.mean(),
        };
    }
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
        home: env.home,
    };
    let home_plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
    let ca = env.region("ca-central-1");
    let ca_plan = DeploymentPlan::uniform(bench.dag.node_count(), ca);
    let carbon = env.carbon.clone();
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };
    engine.provision(&mut env.cloud, &app, &home_plan);
    engine.provision(&mut env.cloud, &app, &ca_plan);

    let mut rng = Pcg32::seed(66);
    let mut inv = 0u64;
    // Steady traffic at home (one invocation per 30 s keeps it warm)...
    let mut before = 0.0;
    for i in 0..BEFORE {
        inv += 1;
        let t = 1000.0 + i as f64 * 30.0;
        before += engine
            .invoke(&mut env.cloud, &app, &home_plan, inv, t, &mut rng)
            .e2e_latency_s;
    }
    // ...then the migration switches traffic to ca-central-1.
    let t_switch = 1000.0 + BEFORE as f64 * 30.0;
    let mut first = 0.0;
    let mut after_rest = 0.0;
    for i in 0..AFTER {
        inv += 1;
        let t = t_switch + i as f64 * 30.0;
        let lat = engine
            .invoke(&mut env.cloud, &app, &ca_plan, inv, t, &mut rng)
            .e2e_latency_s;
        if i == 0 {
            first = lat;
        } else {
            after_rest += lat;
        }
    }
    (
        before / BEFORE as f64,
        first,
        after_rest / (AFTER - 1) as f64,
    )
}

fn main() {
    println!("Warm-pool ablation — mean latency (s) around a migration to ca-central-1");
    println!(
        "{:<16}{:>14}{:>18}{:>16}",
        "cold model", "before switch", "1st after", "steady after"
    );
    let mut rows = Vec::new();
    for (label, warm) in [("probabilistic", false), ("warm pool", true)] {
        let (before, first, steady) = run(warm);
        println!("{label:<16}{before:>14.3}{first:>18.3}{steady:>16.3}");
        rows.push(serde_json::json!({
            "model": label,
            "before_s": before,
            "first_after_s": first,
            "steady_after_s": steady,
            "transient_pct": (first / steady - 1.0) * 100.0,
        }));
    }
    println!("\n(the stateful pool shows a cold-start spike right after the switch that the");
    println!(" probabilistic model spreads uniformly — the migration transient of offloading)");
    write_json("ablation_warmpool", &serde_json::Value::Array(rows));
}
