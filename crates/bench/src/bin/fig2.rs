//! Fig. 2 — Hourly carbon intensity of the AWS North American regions
//! over the July-2023..January-2024 window, with the two highlighted
//! week-long windows.
//!
//! Prints summary statistics per region (matching the paper's §9.2 I1
//! relations) and emits the full hourly series to `results/fig2.json`.

use caribou_bench::harness::{write_json, ExpEnv};
use caribou_carbon::source::CarbonDataSource;

fn main() {
    let env = ExpEnv::new(2);
    // Sim epoch (hour 0) is 2023-10-15; Fig. 2 spans July 2023..Jan 2024,
    // i.e. hours -2544..2616 relative to the epoch.
    let from_h: i64 = -106 * 24;
    let to_h: i64 = 109 * 24;
    let names = ["us-east-1", "us-west-1", "us-west-2", "ca-central-1"];

    println!("Fig. 2 — grid carbon intensity (gCO2eq/kWh), Jul 2023 .. Jan 2024");
    println!(
        "{:<16}{:>10}{:>10}{:>10}{:>14}",
        "region", "mean", "min", "max", "day/night"
    );
    let mut out = serde_json::Map::new();
    let mut means = std::collections::HashMap::new();
    for name in names {
        let r = env.region(name);
        let mut values = Vec::new();
        let mut day = 0.0;
        let mut night = 0.0;
        let mut dn = 0usize;
        for h in from_h..to_h {
            let v = env.carbon.intensity(r, h as f64 + 0.5);
            values.push(v);
            // Local midday vs local 2 am, approximated by UTC offsets of
            // the profiles (NA regions: UTC-5..-8 → UTC 18-23 is midday).
            let hod = (h.rem_euclid(24)) as u32;
            if (19..=22).contains(&hod) {
                day += v;
                dn += 1;
            }
            if (7..=10).contains(&hod) {
                night += v;
            }
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        means.insert(name, mean);
        println!(
            "{name:<16}{mean:>10.1}{min:>10.1}{max:>10.1}{:>14.2}",
            day / night.max(1e-9)
        );
        let _ = dn;
        out.insert(
            name.to_string(),
            serde_json::json!({ "mean": mean, "min": min, "max": max, "hourly": values }),
        );
    }

    let pjm = means["us-east-1"];
    println!("\nCalibration vs paper (§9.2 I1):");
    println!(
        "  us-west-1 below us-east-1:    {:>5.1}%  (paper: 6.1%)",
        (1.0 - means["us-west-1"] / pjm) * 100.0
    );
    println!(
        "  ca-central-1 below us-east-1: {:>5.1}%  (paper: 91.5%)",
        (1.0 - means["ca-central-1"] / pjm) * 100.0
    );
    println!(
        "  us-west-2 vs us-east-1:       {:>5.1}%  (paper: comparable)",
        (1.0 - means["us-west-2"] / pjm) * 100.0
    );
    write_json("fig2", &serde_json::Value::Object(out));
}
