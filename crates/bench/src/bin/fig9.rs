//! Fig. 9 — Sensitivity of carbon savings to the transmission energy
//! factor.
//!
//! Sweeps `EF_trans` over 1e-5..1e-1 kWh/GB in two scenarios — equal
//! intra/inter factors (left sub-figure) and free intra-region transfer
//! (right sub-figure) — and reports the geometric-mean normalized carbon
//! across all benchmarks/inputs. Paper reference points: at the best-case
//! factor (0.001, equal) the geomean saving is ~66.6%; as the factor
//! approaches zero the saving approaches 91.2%, limited by the residual
//! execution-time differences between regions.

use caribou_bench::harness::{
    default_tolerances, eval_over_week, geomean, write_json, ExpEnv, FineSolver,
};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};

fn main() {
    let env = ExpEnv::new(9);
    let use1 = env.region("us-east-1");
    let factors = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

    println!("Fig. 9 — geomean normalized carbon vs transmission energy factor");
    println!(
        "{:<22}{:<10}{:>12}{:>12}",
        "scenario", "factor", "geo(small)", "geo(large)"
    );
    let mut rows = Vec::new();
    for (scen_name, make) in [
        (
            "equal intra/inter",
            TransmissionScenario::equal as fn(f64) -> TransmissionScenario,
        ),
        ("free intra", TransmissionScenario::free_intra),
    ] {
        for factor in factors {
            let scenario = make(factor);
            let mut norms: Vec<(InputSize, f64)> = Vec::new();
            for input in InputSize::ALL {
                for bench in all_benchmarks(input) {
                    let base = eval_over_week(
                        &env,
                        &bench,
                        scenario,
                        |_| DeploymentPlan::uniform(bench.dag.node_count(), use1),
                        1,
                    );
                    let regions = env.regions.clone();
                    let mut solver =
                        FineSolver::new(&env, &bench, &regions, scenario, default_tolerances(), 9);
                    let fine = eval_over_week(&env, &bench, scenario, |h| solver.plan_at(h), 2);
                    norms.push((input, fine.carbon_g / base.carbon_g));
                }
            }
            let gm = |sz: InputSize| -> f64 {
                geomean(
                    &norms
                        .iter()
                        .filter(|(i, _)| *i == sz)
                        .map(|(_, v)| *v)
                        .collect::<Vec<_>>(),
                )
            };
            let gs = gm(InputSize::Small);
            let gl = gm(InputSize::Large);
            println!("{scen_name:<22}{factor:<10.0e}{gs:>12.3}{gl:>12.3}");
            rows.push(serde_json::json!({
                "scenario": scen_name,
                "factor_kwh_per_gb": factor,
                "geomean_small": gs,
                "geomean_large": gl,
            }));
        }
    }
    println!("\n(paper: saving approaches 91.2% as the factor approaches zero)");
    write_json("fig9", &serde_json::Value::Array(rows));
}
