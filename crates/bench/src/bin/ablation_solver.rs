//! Ablation: HBSS solution quality versus exhaustive enumeration and the
//! coarse single-region strategy (§5.1's design rationale).
//!
//! For each benchmark with an enumerable search space, solves with all
//! three strategies and reports the carbon optimality gap and the number
//! of candidate evaluations — the quality/effort trade-off that justifies
//! HBSS.

use caribou_bench::harness::{default_tolerances, mc_config, write_json, ExpEnv};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::DefaultModels;
use caribou_model::constraints::{Constraints, Objective};
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use caribou_solver::{coarse, exhaustive};
use caribou_workloads::benchmarks::{
    dna_visualization, image_processing, rag_data_ingestion, text2speech_censoring, InputSize,
};

fn main() {
    let env = ExpEnv::new(55);
    println!("Solver ablation — carbon per invocation and evaluations per solve");
    println!(
        "{:<24}{:>7}{:>14}{:>8}{:>14}{:>8}{:>14}{:>8}",
        "benchmark", "|R|^|N|", "hbss g", "evals", "exhaustive g", "evals", "coarse g", "evals"
    );
    let mut rows = Vec::new();
    for bench in [
        dna_visualization(InputSize::Small),
        rag_data_ingestion(InputSize::Small),
        image_processing(InputSize::Small),
        text2speech_censoring(InputSize::Small),
    ] {
        let mut constraints = Constraints::unconstrained(bench.dag.node_count());
        constraints.tolerances = default_tolerances();
        let permitted = constraints
            .permitted_regions(&bench.dag, &env.regions, &env.cloud.regions, env.home)
            .unwrap();
        let models = DefaultModels {
            profile: &bench.profile,
            runtime: &env.cloud.compute,
            latency: &env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &bench.dag,
            profile: &bench.profile,
            permitted: &permitted,
            home: env.home,
            objective: Objective::Carbon,
            tolerances: default_tolerances(),
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            mc_config: mc_config(),
        };
        let hbss = HbssSolver::new().solve(&ctx, 12.5, &mut Pcg32::seed(1));
        let exact = exhaustive::solve(&ctx, 12.5, &mut Pcg32::seed(2));
        let single = coarse::solve(&ctx, 12.5, &mut Pcg32::seed(3));
        let h = ctx.metric_of(&hbss.best_estimate);
        let s = ctx.metric_of(&single.best_estimate);
        match exact {
            Some(ex) => {
                let e = ctx.metric_of(&ex.best_estimate);
                println!(
                    "{:<24}{:>7}{:>14.4e}{:>8}{:>14.4e}{:>8}{:>14.4e}{:>8}",
                    bench.name,
                    ctx.search_space_size(),
                    h,
                    hbss.evaluated,
                    e,
                    ex.evaluated,
                    s,
                    single.evaluated
                );
                rows.push(serde_json::json!({
                    "benchmark": bench.name,
                    "space": ctx.search_space_size(),
                    "hbss_g": h, "hbss_evals": hbss.evaluated,
                    "exhaustive_g": e, "exhaustive_evals": ex.evaluated,
                    "coarse_g": s, "coarse_evals": single.evaluated,
                    "hbss_gap": h / e,
                    "coarse_gap": s / e,
                }));
            }
            None => {
                println!(
                    "{:<24}{:>7}{:>14.4e}{:>8}{:>14}{:>8}{:>14.4e}{:>8}",
                    bench.name,
                    ctx.search_space_size(),
                    h,
                    hbss.evaluated,
                    "(too big)",
                    "-",
                    s,
                    single.evaluated
                );
            }
        }
    }
    println!(
        "\n(HBSS should sit within a few percent of exhaustive at a fraction of the evaluations;"
    );
    println!(" coarse is cheapest but misses fine-grained splits — the paper's §5.1 argument.)");
    write_json("ablation_solver", &serde_json::Value::Array(rows));
}
