//! Extension experiment: multi-cloud region sets (the Sky-computing
//! motivation of §1; the paper's Table 2 lists Caribou as AWS-only and
//! flags "future portability" via pub/sub's cross-provider availability).
//!
//! Compares fine-grained shifting over the AWS-only NA evaluation set
//! against an AWS+GCP multi-cloud set, with and without a
//! same-provider compliance constraint (`allowed_providers = [Aws]`). A
//! GCP region on the same grid as an AWS one (us-west1 / us-west-2)
//! demonstrates that the carbon differential is a property of the grid,
//! not the provider.

use caribou_bench::harness::{geomean, write_json, StrategyResult};
use caribou_carbon::source::{ForecastingSource, RegionalSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig, MonteCarloEstimator};
use caribou_model::constraints::{Constraints, Objective, Tolerances};
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::Provider;
use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use caribou_workloads::benchmarks::{all_benchmarks, Benchmark, InputSize};

fn hour_points() -> Vec<f64> {
    let step = if std::env::var("CARIBOU_FAST").is_ok_and(|v| v == "1") {
        12
    } else {
        6
    };
    (0..168).step_by(step).map(|h| h as f64 + 0.5).collect()
}

struct Env {
    cloud: SimCloud,
    carbon: RegionalSource,
    home: RegionId,
}

fn env() -> Env {
    let cloud = SimCloud::with_catalog(RegionCatalog::multi_cloud(), 77);
    let carbon = RegionalSource::new(
        &cloud.regions,
        SyntheticCarbonSource::aws_calibrated(20231015),
    )
    .expect("the multi-cloud catalog's grid zones are all calibrated");
    let home = cloud.region("us-east-1").unwrap();
    Env {
        cloud,
        carbon,
        home,
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_strategy(
    env: &Env,
    bench: &Benchmark,
    region_set: &[RegionId],
    constraints: &Constraints,
    seed: u64,
) -> StrategyResult {
    let permitted = constraints
        .permitted_regions(&bench.dag, region_set, &env.cloud.regions, env.home)
        .expect("valid constraints");
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &env.cloud.compute,
        latency: &env.cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let mc = MonteCarloConfig {
        batch: 100,
        max_samples: 400,
        cv_threshold: 0.08,
    };
    let mut total = StrategyResult::default();
    let points = hour_points();
    let mut rng = Pcg32::seed_stream(seed, 0x3c1d);
    for &h in &points {
        let day_start = (h / 24.0).floor() * 24.0;
        let forecast = ForecastingSource::fit(&env.carbon, region_set, day_start, 48);
        let ctx = SolverContext {
            dag: &bench.dag,
            profile: &bench.profile,
            permitted: &permitted,
            home: env.home,
            objective: Objective::Carbon,
            tolerances: constraints.tolerances,
            carbon_source: &forecast,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            mc_config: mc,
        };
        let plan = HbssSolver::new()
            .solve(&ctx, h, &mut rng.fork(h as u64))
            .best;
        let est = MonteCarloEstimator {
            dag: &bench.dag,
            profile: &bench.profile,
            carbon_source: &env.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: &models,
            home: env.home,
            config: mc,
        };
        let s = est.estimate(&plan, h, &mut rng.fork(h as u64 ^ 0xe));
        total.carbon_g += s.carbon.mean;
        total.latency_p95_s += s.latency.p95;
    }
    total.carbon_g /= points.len() as f64;
    total.latency_p95_s /= points.len() as f64;
    total
}

fn main() {
    let env = env();
    let aws_na = env.cloud.regions.evaluation_regions();
    let multi: Vec<RegionId> = [
        "us-east-1",
        "us-west-1",
        "us-west-2",
        "ca-central-1",
        "us-central1",
        "us-west1",
        "northamerica-northeast1",
    ]
    .iter()
    .map(|n| {
        env.cloud
            .region(n)
            .expect("multicloud catalog includes every listed region")
    })
    .collect();

    let tolerances = Tolerances {
        latency: 0.10,
        cost: 1.0,
        carbon: f64::INFINITY,
    };
    println!("Multi-cloud extension — best-case scenario, NA region sets");
    println!(
        "{:<24}{:<7}{:>12}{:>14}{:>16}",
        "benchmark", "input", "AWS-only", "AWS+GCP", "AWS+GCP (aws!)"
    );
    let mut rows = Vec::new();
    let mut norms = (Vec::new(), Vec::new(), Vec::new());
    for input in InputSize::ALL {
        for bench in all_benchmarks(input) {
            let mut c = Constraints::unconstrained(bench.dag.node_count());
            c.tolerances = tolerances;
            // Baseline for normalization.
            let baseline = {
                let models = DefaultModels {
                    profile: &bench.profile,
                    runtime: &env.cloud.compute,
                    latency: &env.cloud.latency,
                    orchestrator: Orchestrator::Caribou,
                };
                let est = MonteCarloEstimator {
                    dag: &bench.dag,
                    profile: &bench.profile,
                    carbon_source: &env.carbon,
                    carbon_model: CarbonModel::new(TransmissionScenario::BEST),
                    cost_model: CostModel::new(&env.cloud.pricing),
                    models: &models,
                    home: env.home,
                    config: MonteCarloConfig {
                        batch: 100,
                        max_samples: 400,
                        cv_threshold: 0.08,
                    },
                };
                let plan = DeploymentPlan::uniform(bench.dag.node_count(), env.home);
                let mut rng = Pcg32::seed(9);
                hour_points()
                    .iter()
                    .map(|h| est.estimate(&plan, *h, &mut rng).carbon.mean)
                    .sum::<f64>()
                    / hour_points().len() as f64
            };
            let aws_only = eval_strategy(&env, &bench, &aws_na, &c, 1);
            let multi_free = eval_strategy(&env, &bench, &multi, &c, 2);
            // Same set but compliance pins the workflow to AWS.
            let mut aws_pinned = c.clone();
            aws_pinned.workflow.allowed_providers = vec![Provider::Aws];
            let multi_pinned = eval_strategy(&env, &bench, &multi, &aws_pinned, 3);

            let n1 = aws_only.carbon_g / baseline;
            let n2 = multi_free.carbon_g / baseline;
            let n3 = multi_pinned.carbon_g / baseline;
            println!(
                "{:<24}{:<7}{:>12.3}{:>14.3}{:>16.3}",
                bench.name,
                input.label(),
                n1,
                n2,
                n3
            );
            rows.push(serde_json::json!({
                "benchmark": bench.name,
                "input": input.label(),
                "aws_only_norm": n1,
                "multicloud_norm": n2,
                "multicloud_aws_pinned_norm": n3,
            }));
            norms.0.push(n1);
            norms.1.push(n2);
            norms.2.push(n3);
        }
    }
    println!(
        "\nGeomeans: AWS-only {:.3}; AWS+GCP {:.3}; AWS+GCP with aws-only compliance {:.3}",
        geomean(&norms.0),
        geomean(&norms.1),
        geomean(&norms.2)
    );
    println!("(provider compliance must recover the AWS-only result; the free multi-cloud");
    println!(" set may gain from GCP's Québec/Pacific-Northwest presence)");
    write_json("multicloud", &serde_json::Value::Array(rows));
}
