//! Fig. 8 — Normalized carbon versus execution/transmission carbon ratio.
//!
//! For every benchmark × input × scenario, runs the Fine(all) strategy and
//! plots (textually) the carbon normalized to Coarse(us-east-1) against
//! the workload's execution-to-transmission carbon ratio. Paper shape:
//! geospatial shifting offers more savings as the ratio grows; the
//! transmission-heavy Image Processing sits at the top-left, Text2Speech/
//! DNA at the bottom-right.

use caribou_bench::harness::{default_tolerances, eval_over_week, write_json, ExpEnv, FineSolver};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};

fn main() {
    let env = ExpEnv::new(8);
    let use1 = env.region("us-east-1");
    let scenarios = [
        ("best", TransmissionScenario::BEST),
        ("worst", TransmissionScenario::WORST),
    ];

    println!("Fig. 8 — normalized carbon vs execution/transmission ratio");
    println!(
        "{:<24}{:<7}{:<7}{:>10}{:>10}",
        "benchmark", "input", "txn", "ratio", "norm"
    );
    let mut rows = Vec::new();
    let mut points: Vec<(f64, f64)> = Vec::new();
    for input in InputSize::ALL {
        for bench in all_benchmarks(input) {
            for (scen_name, scenario) in scenarios {
                let base = eval_over_week(
                    &env,
                    &bench,
                    scenario,
                    |_| DeploymentPlan::uniform(bench.dag.node_count(), use1),
                    1,
                );
                let regions = env.regions.clone();
                let mut solver =
                    FineSolver::new(&env, &bench, &regions, scenario, default_tolerances(), 8);
                let fine = eval_over_week(&env, &bench, scenario, |h| solver.plan_at(h), 2);
                // The ratio is computed from modeled energy data ("We
                // calculate the ratio using our modeled energy usage
                // data"): the execution vs transmission carbon an
                // *offloaded* deployment incurs under this scenario. The
                // fully-offloaded ca-central-1 deployment is the
                // reference — under the worst case its inter-region
                // transfers are exactly the data that offloading moves.
                let ca = env.region("ca-central-1");
                let offloaded = eval_over_week(
                    &env,
                    &bench,
                    scenario,
                    |_| DeploymentPlan::uniform(bench.dag.node_count(), ca),
                    3,
                );
                let ratio = base.exec_carbon_g / offloaded.trans_carbon_g.max(1e-12);
                let norm = fine.carbon_g / base.carbon_g;
                println!(
                    "{:<24}{:<7}{:<7}{:>10.2}{:>10.3}",
                    bench.name,
                    input.label(),
                    scen_name,
                    ratio,
                    norm
                );
                rows.push(serde_json::json!({
                    "benchmark": bench.name,
                    "input": input.label(),
                    "scenario": scen_name,
                    "exec_over_trans": ratio,
                    "normalized_carbon": norm,
                }));
                points.push((ratio, norm));
            }
        }
    }

    // The paper's qualitative claim: savings grow with the ratio. Check
    // the rank correlation between log-ratio and normalized carbon.
    points.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n = points.len();
    let lower_third: f64 = points[..n / 3].iter().map(|p| p.1).sum::<f64>() / (n / 3) as f64;
    let upper_third: f64 = points[n - n / 3..].iter().map(|p| p.1).sum::<f64>() / (n / 3) as f64;
    println!(
        "\nMean normalized carbon: transmission-heavy third {:.3} vs compute-heavy third {:.3}",
        lower_third, upper_third
    );
    println!("(paper: savings increase with the execution/transmission ratio)");
    write_json("fig8", &serde_json::Value::Array(rows));
}
