//! Fig. 13 — Adaptive learning and solving period (§9.7).
//!
//! (a) Disables the dynamic triggering policy and sweeps the fixed solve
//! frequency from once to seven times per week on Text2Speech Censoring
//! (small input, ~1.6K invocations/day), reporting the total carbon per
//! invocation split into workflow execution and framework (solver)
//! overhead, for both transmission scenarios. Paper shape: more frequent
//! solves add no significant overhead relative to savings but also no
//! significant extra savings; the break-even of one 24-hour-granularity
//! solve is ~91 invocations in the worst case.
//!
//! (b) Forecast quality versus horizon: Holt-Winters MAPE for horizons of
//! 1..7 days (the forecast a once-per-`k`-days solver relies on). Paper
//! shape: quality does not degrade linearly with the window.

use caribou_bench::harness::{mc_config, write_json, ExpEnv};
use caribou_carbon::source::{CarbonDataSource, ForecastingSource};
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_core::manager::ManagerConfig;
use caribou_core::tokens::solve_carbon_g;
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::rng::Pcg32;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};
use caribou_workloads::traces::azure_trace;

fn main() {
    let mut out = serde_json::Map::new();

    // (a) fixed solve-frequency sweep.
    println!("Fig. 13(a) — carbon per invocation vs solves per week");
    println!(
        "{:<7}{:>8}{:>16}{:>16}{:>12}",
        "txn", "solves", "workflow g/inv", "framework g/inv", "total g/inv"
    );
    let mut part_a = Vec::new();
    for (scen_name, scenario) in [
        ("best", TransmissionScenario::BEST),
        ("worst", TransmissionScenario::WORST),
    ] {
        for solves_per_week in 1..=7usize {
            let env = ExpEnv::new(13);
            let bench = text2speech_censoring(InputSize::Small);
            let app = WorkflowApp {
                name: bench.dag.name().into(),
                dag: bench.dag.clone(),
                profile: bench.profile.clone(),
                home: env.home,
            };
            let mut constraints = bench.constraints.clone();
            constraints.tolerances = caribou_bench::harness::default_tolerances();
            let mut config = CaribouConfig::new(env.regions.clone(), scenario);
            config.mc = mc_config();
            config.hbss = caribou_bench::harness::hbss_params();
            config.seed = 13;
            config.manager = ManagerConfig {
                go_runtime: false,
                dynamic_triggering: false,
                fixed_interval_s: 7.0 * 86_400.0 / solves_per_week as f64,
            };
            config.plan_expiry_s = 7.0 * 86_400.0 / solves_per_week as f64 + 3600.0;
            let mut fw = Caribou::new(env.cloud, env.carbon, config);
            let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
            let idx = fw.deploy(app, &manifest, constraints).unwrap();
            let trace = azure_trace(
                10.0,
                7.0 * 86_400.0,
                1600.0,
                &mut Pcg32::seed_stream(13, 0x7ace),
            );
            let report = fw.run_trace(idx, &trace);
            let n = report.samples.len() as f64;
            let wf = report.workflow_carbon_g() / n;
            let fwk = report.framework_carbon_g / n;
            println!(
                "{scen_name:<7}{solves_per_week:>8}{wf:>16.4e}{fwk:>16.4e}{:>12.4e}",
                wf + fwk
            );
            part_a.push(serde_json::json!({
                "scenario": scen_name,
                "solves_per_week": solves_per_week,
                "workflow_g_per_inv": wf,
                "framework_g_per_inv": fwk,
            }));
        }
    }
    out.insert("a".into(), serde_json::Value::Array(part_a));

    // Break-even: one 24-hour-granularity solve (complexity 10) in
    // ca-central-1 versus the worst-case per-invocation saving.
    {
        let env = ExpEnv::new(13);
        let ca = env.region("ca-central-1");
        let solve_g = solve_carbon_g(10, 24, false, env.carbon.average(ca, 0.0, 24.0));
        // Per-invocation worst-case saving measured above (scenario worst,
        // any frequency): recompute quickly from the JSON rows.
        println!(
            "\nOne Python 24-solve DP generation in ca-central-1: {solve_g:.3e} g (paper ~1.98e-2 g)"
        );
        out.insert("solve_carbon_g".into(), serde_json::json!(solve_g));
    }

    // (b) forecast quality vs horizon.
    println!("\nFig. 13(b) — Holt-Winters forecast MAPE vs horizon");
    println!(
        "{:<16}{}",
        "region",
        (1..=7).map(|d| format!("{d:>8}d")).collect::<String>()
    );
    let env = ExpEnv::new(13);
    let mut part_b = Vec::new();
    for name in ["us-east-1", "us-west-1", "us-west-2", "ca-central-1"] {
        let r = env.region(name);
        let fit_at = 0.0;
        let f = ForecastingSource::fit(&env.carbon, &[r], fit_at, 7 * 24);
        let mut line = format!("{name:<16}");
        let mut mapes = Vec::new();
        for day in 1..=7usize {
            let mut mape = 0.0;
            for h in ((day - 1) * 24)..(day * 24) {
                let t = fit_at + h as f64 + 0.5;
                let actual = env.carbon.intensity(r, t);
                let predicted = f.intensity(r, t);
                mape += ((predicted - actual) / actual).abs();
            }
            mape /= 24.0;
            line.push_str(&format!("{:>8.1}%", mape * 100.0));
            mapes.push(mape);
        }
        println!("{line}");
        part_b.push(serde_json::json!({ "region": name, "mape_by_day": mapes }));
    }
    println!("(paper: forecast quality does not worsen linearly with the window)");
    out.insert("b".into(), serde_json::Value::Array(part_b));
    write_json("fig13", &serde_json::Value::Object(out));
}
