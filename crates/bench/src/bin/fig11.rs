//! Fig. 11 — Week-long self-adaptive operation (§9.5).
//!
//! Runs the full framework (token-bucket manager, forecast-based solver,
//! migrator, executor) on Text2Speech Censoring with the large input and
//! an Azure-shaped invocation trace for the evaluation week, under both
//! transmission scenarios. Reports, per hour: the region hosting the
//! majority of workflow nodes, Caribou's realized carbon normalized to
//! the coarse us-east-1 deployment, and the coarse single-region
//! baselines; plus the deployment-plan generation times (the learning
//! phase solves often, then the cadence relaxes).

use caribou_bench::harness::{mc_config, write_json, ExpEnv};
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloEstimator};
use caribou_model::manifest::DeploymentManifest;
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};
use caribou_workloads::traces::azure_trace;

fn main() {
    let scenarios = [
        ("worst", TransmissionScenario::WORST),
        ("best", TransmissionScenario::BEST),
    ];
    let mut out = serde_json::Map::new();

    for (scen_name, scenario) in scenarios {
        let env = ExpEnv::new(11);
        let bench = text2speech_censoring(InputSize::Large);
        let app = WorkflowApp {
            name: bench.dag.name().into(),
            dag: bench.dag.clone(),
            profile: bench.profile.clone(),
            home: env.home,
        };
        let mut constraints = bench.constraints.clone();
        constraints.tolerances = caribou_bench::harness::default_tolerances();

        // Coarse baselines evaluated per hour with the actual carbon.
        let coarse_names = ["us-east-1", "us-west-1", "us-west-2"];
        let mut coarse_hourly: Vec<Vec<f64>> = vec![Vec::new(); coarse_names.len()];
        {
            let models = DefaultModels {
                profile: &bench.profile,
                runtime: &env.cloud.compute,
                latency: &env.cloud.latency,
                orchestrator: Orchestrator::Caribou,
            };
            let mut rng = Pcg32::seed(1);
            for hour in 0..168 {
                for (i, name) in coarse_names.iter().enumerate() {
                    let r = env.region(name);
                    let est = MonteCarloEstimator {
                        dag: &bench.dag,
                        profile: &bench.profile,
                        carbon_source: &env.carbon,
                        carbon_model: CarbonModel::new(scenario),
                        cost_model: CostModel::new(&env.cloud.pricing),
                        models: &models,
                        home: env.home,
                        config: mc_config(),
                    };
                    let plan = DeploymentPlan::uniform(bench.dag.node_count(), r);
                    let s = est.estimate(&plan, hour as f64 + 0.5, &mut rng);
                    coarse_hourly[i].push(s.carbon.mean);
                }
            }
        }

        // Full framework run.
        let mut config = CaribouConfig::new(env.regions.clone(), scenario);
        config.mc = mc_config();
        config.hbss = caribou_bench::harness::hbss_params();
        config.seed = 11;
        let regions = env.regions.clone();
        let mut fw = Caribou::new(env.cloud, env.carbon, config);
        let _ = &regions;
        let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
        let idx = fw.deploy(app, &manifest, constraints).unwrap();
        let trace = azure_trace(
            10.0,
            7.0 * 86_400.0,
            1600.0,
            &mut Pcg32::seed_stream(11, 0x7ace),
        );
        let report = fw.run_trace(idx, &trace);

        // Aggregate Caribou's realized carbon per hour (production traffic
        // only) and the hourly majority region.
        let mut hourly_carbon = vec![0.0f64; 168];
        let mut hourly_count = vec![0usize; 168];
        let mut hourly_region: Vec<String> = vec![String::new(); 168];
        for s in report.samples.iter().filter(|s| !s.benchmark_traffic) {
            let h = ((s.at_s / 3600.0) as usize).min(167);
            hourly_carbon[h] += s.carbon_g();
            hourly_count[h] += 1;
            hourly_region[h] = fw.cloud.regions.name(s.majority_region).to_string();
        }

        println!("\nFig. 11 — {scen_name}-case scenario (Text2Speech Censoring, large)");
        println!(
            "DP generations at hours: {:?}",
            report
                .dp_generations
                .iter()
                .map(|t| (t / 3600.0).round() as i64)
                .collect::<Vec<_>>()
        );
        println!(
            "{:>5}{:>16}{:>10}{:>10}{:>10}{:>10}",
            "hour", "majority", "caribou", "e1", "w1", "w2"
        );
        let mut series = Vec::new();
        for h in (0..168).step_by(6) {
            if hourly_count[h] == 0 {
                continue;
            }
            let caribou = hourly_carbon[h] / hourly_count[h] as f64;
            let e1 = coarse_hourly[0][h];
            let norm = caribou / e1;
            println!(
                "{h:>5}{:>16}{norm:>10.3}{:>10.3}{:>10.3}{:>10.3}",
                hourly_region[h],
                1.0,
                coarse_hourly[1][h] / e1,
                coarse_hourly[2][h] / e1
            );
            series.push(serde_json::json!({
                "hour": h,
                "majority_region": hourly_region[h],
                "caribou_norm": norm,
                "us_west_1_norm": coarse_hourly[1][h] / e1,
                "us_west_2_norm": coarse_hourly[2][h] / e1,
            }));
        }

        // Weekly summary.
        let produced: Vec<&caribou_core::framework::InvocationSample> = report
            .samples
            .iter()
            .filter(|s| !s.benchmark_traffic)
            .collect();
        let caribou_total: f64 = produced.iter().map(|s| s.carbon_g()).sum();
        let baseline_total: f64 = produced
            .iter()
            .map(|s| coarse_hourly[0][((s.at_s / 3600.0) as usize).min(167)])
            .sum();
        println!(
            "Week total: caribou/coarse(us-east-1) = {:.3}; framework overhead {:.2e} g ({:.3}% of workflow)",
            caribou_total / baseline_total,
            report.framework_carbon_g,
            100.0 * report.framework_carbon_g / caribou_total
        );
        out.insert(
            scen_name.to_string(),
            serde_json::json!({
                "dp_generation_hours": report
                    .dp_generations
                    .iter()
                    .map(|t| t / 3600.0)
                    .collect::<Vec<_>>(),
                "weekly_normalized": caribou_total / baseline_total,
                "framework_carbon_g": report.framework_carbon_g,
                "series": series,
            }),
        );
    }
    write_json("fig11", &serde_json::Value::Object(out));
}
