//! Fig. 10 — Carbon efficiency versus latency tolerance (§9.4).
//!
//! For DNA Visualization and Image Processing, sweeps the runtime
//! tolerance from 0% to 10% and reports, per transmission scenario, the
//! relative carbon and the relative tail time (p95 of the chosen
//! deployment over the QoS bound = home p95 × (1 + tolerance); > 1.0
//! signifies a violation). Paper shape: more tolerance → more offloading
//! freedom → lower carbon, with QoS respected; under the worst case the
//! solver mostly stays home and incurs no runtime overhead.

use caribou_bench::harness::{eval_over_week, write_json, ExpEnv, FineSolver};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::constraints::Tolerances;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{dna_visualization, image_processing, InputSize};

fn main() {
    let env = ExpEnv::new(10);
    let use1 = env.region("us-east-1");
    let tolerances = [0.0, 0.025, 0.05, 0.075, 0.10];
    let scenarios = [
        ("best", TransmissionScenario::BEST),
        ("worst", TransmissionScenario::WORST),
    ];

    println!("Fig. 10 — relative carbon / relative tail time vs runtime tolerance");
    println!(
        "{:<24}{:<7}{:<7}{:>7}{:>12}{:>12}{:>8}",
        "benchmark", "input", "txn", "tol%", "rel carbon", "rel time", "QoS"
    );
    let mut rows = Vec::new();
    for bench in [
        dna_visualization(InputSize::Small),
        image_processing(InputSize::Small),
    ] {
        for (scen_name, scenario) in scenarios {
            let base = eval_over_week(
                &env,
                &bench,
                scenario,
                |_| DeploymentPlan::uniform(bench.dag.node_count(), use1),
                1,
            );
            for tol in tolerances {
                let t = Tolerances {
                    latency: tol,
                    cost: 1.0,
                    carbon: f64::INFINITY,
                };
                let regions = env.regions.clone();
                let mut solver = FineSolver::new(&env, &bench, &regions, scenario, t, 10);
                let fine = eval_over_week(&env, &bench, scenario, |h| solver.plan_at(h), 2);
                let rel_carbon = fine.carbon_g / base.carbon_g;
                // Relative time: chosen deployment's p95 over the QoS
                // bound (home p95 augmented by the tolerance).
                let qos_bound = base.latency_p95_s * (1.0 + tol);
                let rel_time = fine.latency_p95_s / qos_bound;
                println!(
                    "{:<24}{:<7}{:<7}{:>7.1}{:>12.3}{:>12.3}{:>8}",
                    bench.name,
                    bench.input.label(),
                    scen_name,
                    tol * 100.0,
                    rel_carbon,
                    rel_time,
                    // A small slack absorbs Monte Carlo noise between the
                    // solve-time and evaluation-time estimates.
                    if rel_time <= 1.02 { "met" } else { "VIOLATED" }
                );
                rows.push(serde_json::json!({
                    "benchmark": bench.name,
                    "scenario": scen_name,
                    "tolerance": tol,
                    "relative_carbon": rel_carbon,
                    "relative_time": rel_time,
                }));
            }
        }
    }
    write_json("fig10", &serde_json::Value::Array(rows));
}
