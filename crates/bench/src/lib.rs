//! Shared experiment harness for regenerating the paper's tables/figures.
//!
//! Populated by the experiment binaries (`fig2` … `fig13`, `table1`).

pub mod harness;
