#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied + the full test
# suite. Run before sending a PR; CI runs the same three commands.
#
#   scripts/check.sh          # fmt + clippy + tests
#   scripts/check.sh --fast   # fmt + clippy only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo test"
    cargo test --workspace -q

    # Deterministic chaos smoke: a fixed-seed fault campaign (region
    # outages, partitions, gray failures, KV throttling, cold storms)
    # must report zero invariant violations. Exit code is non-zero on
    # any violation.
    echo "==> caribou chaos smoke (seed 42)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        chaos --seed 42 --requests 200 --duration-s 7200

    # Deterministic solver smoke: the 24-hour schedule printed by
    # `caribou plan --hourly` must be bit-identical whether the solver
    # evaluation engine fans candidates across 1 or 4 workers.
    echo "==> caribou solver smoke (1 vs 4 workers)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan dna --hourly --workers 1 >/tmp/caribou-solve-1w.txt
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan dna --hourly --workers 4 >/tmp/caribou-solve-4w.txt
    diff /tmp/caribou-solve-1w.txt /tmp/caribou-solve-4w.txt
    rm -f /tmp/caribou-solve-1w.txt /tmp/caribou-solve-4w.txt

    # Solver bench guard in --test mode: asserts worker-count-invariant
    # schedules, a warm estimate cache (solver.cache.hit > 0), and — on
    # machines with >=4 cores — a >=2x 4-worker speedup.
    echo "==> solver bench guard"
    cargo bench -q -p caribou-bench --bench solver -- --test

    # Estimator bench guard: batched path bit-identical to the scalar
    # reference at 1/4/8/16 lanes, >=1.7x single-thread at the solver's
    # default stopping rule, >=4x at the high-precision stopping rule,
    # and within 2x of the committed BENCH_solver.json estimator
    # baseline.
    echo "==> estimator bench guard"
    cargo bench -q -p caribou-bench --bench estimator -- --test

    # Deterministic loadgen smoke: a 50k-invocation sustained-load run
    # (7 chunks on the persistent sharded path, so warm state crosses
    # chunk boundaries and exchange ticks) must print a bit-identical
    # summary whether the shards execute on 1 or 2 workers.
    echo "==> caribou loadgen smoke (50k invocations, 1 vs 2 workers)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        loadgen text2speech --invocations 50000 --seed 42 --workers 1 \
        >/tmp/caribou-loadgen-1w.txt
    cargo run -q --release -p caribou-core --bin caribou -- \
        loadgen text2speech --invocations 50000 --seed 42 --workers 2 \
        >/tmp/caribou-loadgen-2w.txt
    diff /tmp/caribou-loadgen-1w.txt /tmp/caribou-loadgen-2w.txt
    rm -f /tmp/caribou-loadgen-1w.txt /tmp/caribou-loadgen-2w.txt

    # Loadgen bench guard: worker-count-invariant merges across chunk
    # boundaries, the pooled engine's allocation telemetry
    # (engine.alloc_per_invocation == 2 at steady state), throughput at
    # or above the committed BENCH_loadgen.json baseline (with 2x slack
    # for slower hosts), and a flat-RSS ceiling (quadrupling the run
    # length must not move the peak-RSS high-water mark).
    echo "==> loadgen bench guard"
    cargo bench -q -p caribou-bench --bench loadgen -- --test

    # Deterministic fleet smoke: a multi-tenant re-plan (full solve, then
    # incremental re-solve after a single-hour forecast revision, with
    # --verify diffing incremental against from-scratch) must print a
    # bit-identical summary at 1 and 4 workers.
    echo "==> caribou fleet smoke (32 apps x 6 hours, 1 vs 4 workers)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        fleet --apps 32 --hours 6 --seed 42 --perturb 'h3:us-west-2*2' \
        --verify --workers 1 >/tmp/caribou-fleet-1w.txt
    cargo run -q --release -p caribou-core --bin caribou -- \
        fleet --apps 32 --hours 6 --seed 42 --perturb 'h3:us-west-2*2' \
        --verify --workers 4 >/tmp/caribou-fleet-4w.txt
    diff /tmp/caribou-fleet-1w.txt /tmp/caribou-fleet-4w.txt
    rm -f /tmp/caribou-fleet-1w.txt /tmp/caribou-fleet-4w.txt

    # Fleet bench guard: worker-count-invariant schedules, cross-app
    # cache hit-rate floor, warm re-solves adding zero misses,
    # incremental-equivalence, and app-hours/s at or above the committed
    # BENCH_fleet.json baseline (with 2x slack for slower hosts).
    echo "==> fleet bench guard"
    cargo bench -q -p caribou-bench --bench fleet -- --test

    # Cross-provider plan smoke: widening the provider set must change
    # the schedule (at least one hour offloads to a gcp: region), and the
    # cross-provider solve must stay bit-identical at 1 vs 4 workers.
    echo "==> caribou cross-provider smoke (aws vs aws,gcp; 1 vs 4 workers)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan text2speech --hourly --providers aws \
        >/tmp/caribou-prov-aws.txt 2>/dev/null
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan text2speech --hourly --providers aws,gcp --workers 1 \
        >/tmp/caribou-prov-multi-1w.txt 2>/dev/null
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan text2speech --hourly --providers aws,gcp --workers 4 \
        >/tmp/caribou-prov-multi-4w.txt 2>/dev/null
    if diff -q /tmp/caribou-prov-aws.txt /tmp/caribou-prov-multi-1w.txt >/dev/null; then
        echo "error: aws,gcp schedule identical to aws-only" >&2
        exit 1
    fi
    grep -q 'gcp:' /tmp/caribou-prov-multi-1w.txt || {
        echo "error: aws,gcp schedule never offloads to a gcp: region" >&2
        exit 1
    }
    diff /tmp/caribou-prov-multi-1w.txt /tmp/caribou-prov-multi-4w.txt
    rm -f /tmp/caribou-prov-aws.txt /tmp/caribou-prov-multi-1w.txt \
        /tmp/caribou-prov-multi-4w.txt

    # Golden regression: the default aws-only provider set must replay
    # the committed pre-refactor stdout byte-for-byte for every seeded
    # command in goldens/.
    echo "==> aws-only golden regression (goldens/*.txt)"
    run_golden() {
        cargo run -q --release -p caribou-core --bin caribou -- "$@" \
            >/tmp/caribou-golden.txt 2>/dev/null
        diff "goldens/$GOLDEN" /tmp/caribou-golden.txt
        rm -f /tmp/caribou-golden.txt
    }
    GOLDEN=plan_dna_hourly_aws.txt run_golden plan dna --hourly
    GOLDEN=plan_dna_aws.txt run_golden plan dna
    GOLDEN=simulate_text2speech_aws.txt run_golden \
        simulate text2speech --days 2 --per-day 20
    GOLDEN=chaos_seed42_aws.txt run_golden \
        chaos --seed 42 --requests 200 --duration-s 7200
    GOLDEN=fleet_32x6_aws.txt run_golden \
        fleet --apps 32 --hours 6 --seed 42 --perturb 'h3:us-west-2*2' --verify

    # Correlated chaos smoke: a fixed-seed campaign under correlated
    # fault classes (provider-wide outage, shared failure domains,
    # carbon-data outage) with a 3-entry contingency table must uphold
    # every invariant, print a bit-identical report at 1 and 2 workers,
    # and replay the committed golden byte-for-byte.
    echo "==> caribou correlated chaos smoke (seed 42, contingency 3, 1 vs 2 workers)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        chaos --correlated --contingency 3 --seed 42 --requests 200 \
        --duration-s 14400 --providers aws,gcp --workers 1 \
        >/tmp/caribou-corr-1w.txt 2>/dev/null
    cargo run -q --release -p caribou-core --bin caribou -- \
        chaos --correlated --contingency 3 --seed 42 --requests 200 \
        --duration-s 14400 --providers aws,gcp --workers 2 \
        >/tmp/caribou-corr-2w.txt 2>/dev/null
    diff /tmp/caribou-corr-1w.txt /tmp/caribou-corr-2w.txt
    diff goldens/chaos_correlated_seed42_awsgcp.txt /tmp/caribou-corr-1w.txt
    rm -f /tmp/caribou-corr-1w.txt /tmp/caribou-corr-2w.txt

    # Contingency bench guard: with a fallback table installed and every
    # region healthy, the combined breaker+fallback happy-path check must
    # stay inside the breaker's 10 ns routing budget (and within 4x the
    # committed BENCH_contingency.json baseline).
    echo "==> contingency bench guard"
    cargo bench -q -p caribou-bench --bench contingency -- --test

    # Providers bench guard: worker-count-invariant cross-provider
    # schedules, a hit-rate floor through the provider-qualified cache
    # key, aws-only engines blind to cross-provider entries, and
    # hour-cells/s at or above the committed BENCH_providers.json
    # baseline (with 2x slack for slower hosts).
    echo "==> providers bench guard"
    cargo bench -q -p caribou-bench --bench providers -- --test
fi

# Panic-free user-input surface: the formerly panicking resolution paths
# must stay panic!-free (they return typed ModelError/CarbonError now).
echo "==> panic grep gate"
for f in crates/simcloud/src/cloud.rs crates/carbon/src/source.rs crates/carbon/src/synth.rs; do
    if grep -n 'panic!' "$f"; then
        echo "error: panic! reintroduced in $f" >&2
        exit 1
    fi
done

echo "OK"
