#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied + the full test
# suite. Run before sending a PR; CI runs the same three commands.
#
#   scripts/check.sh          # fmt + clippy + tests
#   scripts/check.sh --fast   # fmt + clippy only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo test"
    cargo test --workspace -q

    # Deterministic chaos smoke: a fixed-seed fault campaign (region
    # outages, partitions, gray failures, KV throttling, cold storms)
    # must report zero invariant violations. Exit code is non-zero on
    # any violation.
    echo "==> caribou chaos smoke (seed 42)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        chaos --seed 42 --requests 200 --duration-s 7200
fi

echo "OK"
