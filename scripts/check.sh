#!/usr/bin/env bash
# Lint gate: formatting + clippy with warnings denied + the full test
# suite. Run before sending a PR; CI runs the same three commands.
#
#   scripts/check.sh          # fmt + clippy + tests
#   scripts/check.sh --fast   # fmt + clippy only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" != "--fast" ]]; then
    echo "==> cargo test"
    cargo test --workspace -q

    # Deterministic chaos smoke: a fixed-seed fault campaign (region
    # outages, partitions, gray failures, KV throttling, cold storms)
    # must report zero invariant violations. Exit code is non-zero on
    # any violation.
    echo "==> caribou chaos smoke (seed 42)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        chaos --seed 42 --requests 200 --duration-s 7200

    # Deterministic solver smoke: the 24-hour schedule printed by
    # `caribou plan --hourly` must be bit-identical whether the solver
    # evaluation engine fans candidates across 1 or 4 workers.
    echo "==> caribou solver smoke (1 vs 4 workers)"
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan dna --hourly --workers 1 >/tmp/caribou-solve-1w.txt
    cargo run -q --release -p caribou-core --bin caribou -- \
        plan dna --hourly --workers 4 >/tmp/caribou-solve-4w.txt
    diff /tmp/caribou-solve-1w.txt /tmp/caribou-solve-4w.txt
    rm -f /tmp/caribou-solve-1w.txt /tmp/caribou-solve-4w.txt

    # Solver bench guard in --test mode: asserts worker-count-invariant
    # schedules, a warm estimate cache (solver.cache.hit > 0), and — on
    # machines with >=4 cores — a >=2x 4-worker speedup.
    echo "==> solver bench guard"
    cargo bench -q -p caribou-bench --bench solver -- --test
fi

echo "OK"
