//! Compliance-constrained offloading (§2.3, §8, Fig. 3).
//!
//! The Text2Speech-Censoring workflow's validation stage is regulation
//! sensitive and must stay in the United States; the remaining stages are
//! free to move. This example shows the paper's claim that "a detailed
//! specification of location constraints (e.g., to ensure compliance of
//! one stage) can allow emission reductions for workflows (e.g., by
//! offloading other stages)": the pinned stage stays in `us-east-1` while
//! everything else shifts to Québec's hydro grid — compared against the
//! whole-workflow pin a workflow-level constraint would force.
//!
//! Run with: `cargo run --release -p caribou-core --example compliance_workflow`

use caribou_carbon::source::{ForecastingSource, RegionalSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::constraints::{Constraints, Objective, RegionFilter, Tolerances};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

fn main() {
    let cloud = SimCloud::aws(7);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(7)).unwrap();
    let home = cloud.region("us-east-1").unwrap();
    let regions = cloud.regions.evaluation_regions();

    let bench = text2speech_censoring(InputSize::Small);
    let upload_node = bench.dag.node_by_name("Upload").expect("stage exists");

    // Per-function compliance: the Upload/validation stage may only run in
    // the US (HIPAA-style residency); the workflow level stays open.
    let mut constraints = Constraints::unconstrained(bench.dag.node_count());
    constraints.per_node[upload_node.index()] = Some(RegionFilter::countries(["US"]));
    constraints.tolerances = Tolerances {
        latency: 0.10,
        cost: 1.0,
        carbon: f64::INFINITY,
    };
    constraints.objective = Objective::Carbon;

    let permitted = constraints
        .permitted_regions(&bench.dag, &regions, &cloud.regions, home)
        .expect("valid constraints");

    // Solve at hour 12 of the evaluation week on forecast data.
    let forecast = ForecastingSource::fit(&carbon, &regions, 0.0, 48);
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &cloud.compute,
        latency: &cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &bench.dag,
        profile: &bench.profile,
        permitted: &permitted,
        home,
        objective: Objective::Carbon,
        tolerances: constraints.tolerances,
        carbon_source: &forecast,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&cloud.pricing),
        models: &models,
        mc_config: MonteCarloConfig::default(),
    };
    let outcome = HbssSolver::new().solve(&ctx, 12.5, &mut Pcg32::seed(7));

    println!("fine-grained plan under the per-stage compliance constraint:");
    for node in bench.dag.all_nodes() {
        let region = outcome.best.region_of(node);
        println!(
            "  {:<20} -> {}",
            bench.dag.node(node).name,
            cloud.regions.name(region)
        );
    }
    let fine = ctx.metric_of(&outcome.best_estimate);
    let home_metric = ctx.metric_of(&outcome.home_estimate);
    println!(
        "carbon/invocation: {fine:.3e} g vs {home_metric:.3e} g at home ({:.1}% reduction)",
        (1.0 - fine / home_metric) * 100.0
    );

    // The Upload stage honored its residency constraint...
    let upload_region = outcome.best.region_of(upload_node);
    assert_eq!(
        cloud.regions.spec(upload_region).country,
        "US",
        "compliance violated"
    );
    // ...while the solver still found offloading opportunities elsewhere.
    assert!(
        !outcome.best.is_single_region(),
        "fine-grained shifting should split the workflow"
    );
    println!("compliance held: `Upload` stayed in the US while other stages moved.");
}
