//! Quickstart: declare a workflow, deploy it, and let Caribou shift it.
//!
//! Builds a two-stage serverless workflow with the builder API (the
//! paper's Listing 1), deploys it to the simulated AWS cloud with
//! `us-east-1` as the home region, and runs two days of traffic. Caribou
//! learns from the invocations, solves a carbon-optimal deployment plan on
//! forecast grid data, migrates the functions, and the carbon per
//! invocation drops.
//!
//! Run with: `cargo run --release -p caribou-core --example quickstart`

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::builder::Workflow;
use caribou_model::dist::DistSpec;
use caribou_model::manifest::DeploymentManifest;
use caribou_simcloud::cloud::SimCloud;
use caribou_workloads::traces::uniform_trace;

fn main() {
    // 1. Declare the workflow (one class, three operations — §8).
    let mut wf = Workflow::new("thumbnailer", "1.0");
    let resize = wf
        .serverless_function("Resize")
        .memory_mb(1024)
        .exec_time(DistSpec::LogNormal {
            median: 3.0,
            sigma: 0.1,
        })
        .register();
    let publish = wf
        .serverless_function("Publish")
        .memory_mb(1769)
        .exec_time(DistSpec::LogNormal {
            median: 6.0,
            sigma: 0.1,
        })
        .register();
    wf.invoke(resize, publish, None)
        .payload(DistSpec::Constant { value: 250e3 });
    wf.set_input(DistSpec::Constant { value: 500e3 });

    // 2. Stand up the simulated cloud and calibrated carbon data.
    let cloud = SimCloud::aws(42);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(42)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    let mut caribou = Caribou::new(cloud, carbon, config);

    // 3. Initial deployment to the home region (§6.1).
    let (dag, profile, mut constraints) = wf.extract().expect("valid workflow");
    constraints.tolerances.latency = 0.25;
    let app = WorkflowApp {
        name: dag.name().into(),
        home: caribou.cloud.region("us-east-1").unwrap(),
        dag,
        profile,
    };
    let manifest = DeploymentManifest::new("thumbnailer", "1.0", "us-east-1");
    let idx = caribou
        .deploy(app, &manifest, constraints)
        .expect("deployment succeeds");
    println!("deployed `thumbnailer` to us-east-1");

    // 4. Two days of steady traffic.
    let trace = uniform_trace(60.0, 2.0 * 86_400.0, 1200.0);
    let report = caribou.run_trace(idx, &trace);

    // 5. What happened?
    println!("invocations:        {}", report.samples.len());
    println!(
        "completed:          {:.2}%",
        report.completion_rate() * 100.0
    );
    println!(
        "plans generated at: {:?} h",
        report
            .dp_generations
            .iter()
            .map(|t| (t / 3600.0).round())
            .collect::<Vec<_>>()
    );
    let day = 86_400.0;
    let mean_carbon = |lo: f64, hi: f64| -> f64 {
        let v: Vec<f64> = report
            .samples
            .iter()
            .filter(|s| s.at_s >= lo && s.at_s < hi && !s.benchmark_traffic)
            .map(|s| s.carbon_g())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let before = mean_carbon(0.0, 0.25 * day);
    let after = mean_carbon(1.5 * day, 2.0 * day);
    println!("carbon/invocation:  {before:.3e} g (first hours) -> {after:.3e} g (day 2)");
    println!("reduction:          {:.1}%", (1.0 - after / before) * 100.0);
    println!(
        "framework overhead: {:.3e} g total",
        report.framework_carbon_g
    );
    println!(
        "mean latency:       {:.2} s (p95 {:.2} s)",
        report.mean_latency_s(),
        report.p95_latency_s()
    );
    assert!(after < before, "carbon should drop once the plan activates");
}
