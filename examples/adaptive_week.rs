//! A week of self-adaptive operation (§9.5) on the Video Analytics
//! benchmark under an Azure-shaped diurnal trace.
//!
//! Shows the full control loop end to end: the token bucket gates plan
//! generation by earned carbon budget, plans are solved on Holt-Winters
//! forecasts, the migrator crane-copies images to new regions, traffic
//! follows the hourly plans (with 10% benchmarking traffic pinned home),
//! and the emission accounting uses the actual grid data.
//!
//! Run with: `cargo run --release -p caribou-core --example adaptive_week`

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_workloads::benchmarks::{video_analytics, InputSize};
use caribou_workloads::traces::azure_trace;

fn main() {
    let cloud = SimCloud::aws(21);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(21)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    config.seed = 21;
    let mut caribou = Caribou::new(cloud, carbon, config);

    let bench = video_analytics(InputSize::Small);
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.15;
    constraints.tolerances.cost = 1.0;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: caribou.cloud.region("us-east-1").unwrap(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
    let idx = caribou.deploy(app, &manifest, constraints).unwrap();

    let trace = azure_trace(
        30.0,
        7.0 * 86_400.0,
        1600.0,
        &mut Pcg32::seed_stream(21, 0x7ace),
    );
    println!("running {} invocations over 7 days...", trace.len());
    let report = caribou.run_trace(idx, &trace);

    println!(
        "plan generations at hours: {:?}",
        report
            .dp_generations
            .iter()
            .map(|t| (t / 3600.0).round())
            .collect::<Vec<_>>()
    );
    println!(
        "migration egress: {:.1} MB",
        report.migration_egress_bytes / 1e6
    );

    // Daily carbon-per-invocation trajectory.
    println!("\nday  invocations  gCO2eq/invocation  majority region (last sample)");
    for day in 0..7 {
        let lo = day as f64 * 86_400.0;
        let hi = lo + 86_400.0;
        let samples: Vec<_> = report
            .samples
            .iter()
            .filter(|s| s.at_s >= lo && s.at_s < hi && !s.benchmark_traffic)
            .collect();
        if samples.is_empty() {
            continue;
        }
        let mean = samples.iter().map(|s| s.carbon_g()).sum::<f64>() / samples.len() as f64;
        let region = caribou
            .cloud
            .regions
            .name(samples.last().unwrap().majority_region)
            .to_string();
        println!("{day:>3}  {:>11}  {mean:>17.4e}  {region}", samples.len());
    }

    let total = report.workflow_carbon_g();
    println!(
        "\nweek total: {total:.2} g workflow + {:.3} g framework ({:.2}% overhead)",
        report.framework_carbon_g,
        100.0 * report.framework_carbon_g / total
    );
    println!(
        "completion {:.3}%, mean latency {:.2} s",
        report.completion_rate() * 100.0,
        report.mean_latency_s()
    );
}
