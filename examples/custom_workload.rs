//! Library-level usage: bring your own workload and drive the pieces
//! directly — no framework loop.
//!
//! Defines a custom conditional fan-out DAG, estimates candidate
//! deployments with the Monte Carlo estimator, compares the HBSS solver
//! against exhaustive enumeration, and executes the chosen plan once on
//! the simulated cloud to observe a real invocation record.
//!
//! Run with: `cargo run --release -p caribou-core --example custom_workload`

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig, MonteCarloEstimator};
use caribou_model::builder::Workflow;
use caribou_model::constraints::{Objective, Tolerances};
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::hbss::HbssSolver;
use caribou_solver::{coarse, exhaustive};

fn main() {
    // A fraud-screening pipeline: ingest fans out to a fast rule engine
    // and (conditionally, for 20% of events) a heavyweight ML scorer; an
    // alerting stage joins both.
    let mut wf = Workflow::new("fraud_screen", "1.0");
    let ingest = wf
        .serverless_function("Ingest")
        .memory_mb(512)
        .exec_time(DistSpec::LogNormal {
            median: 0.4,
            sigma: 0.1,
        })
        .register();
    let rules = wf
        .serverless_function("RuleEngine")
        .memory_mb(1024)
        .exec_time(DistSpec::LogNormal {
            median: 1.2,
            sigma: 0.1,
        })
        .register();
    let scorer = wf
        .serverless_function("MlScorer")
        .memory_mb(3538)
        .exec_time(DistSpec::LogNormal {
            median: 7.0,
            sigma: 0.15,
        })
        .register();
    let alert = wf
        .serverless_function("Alert")
        .memory_mb(512)
        .exec_time(DistSpec::LogNormal {
            median: 0.3,
            sigma: 0.1,
        })
        .external_data_bytes(50e3)
        .register();
    wf.invoke(ingest, rules, None)
        .payload(DistSpec::Constant { value: 8e3 });
    wf.invoke(ingest, scorer, Some(0.2))
        .payload(DistSpec::Constant { value: 64e3 });
    wf.invoke(rules, alert, None)
        .payload(DistSpec::Constant { value: 4e3 });
    wf.invoke(scorer, alert, Some(0.2))
        .payload(DistSpec::Constant { value: 4e3 });
    wf.get_predecessor_data(alert);
    wf.set_input(DistSpec::Constant { value: 16e3 });

    let (dag, profile, constraints) = wf.extract().expect("valid workflow");
    println!(
        "extracted DAG: {} nodes, {} edges, sync={}, conditional={}",
        dag.node_count(),
        dag.edge_count(),
        dag.has_sync_nodes(),
        dag.has_conditional_edges()
    );

    let mut cloud = SimCloud::aws(5);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(5)).unwrap();
    let home = cloud.region("us-east-1").unwrap();
    let regions = cloud.regions.evaluation_regions();
    let permitted = constraints
        .permitted_regions(&dag, &regions, &cloud.regions, home)
        .expect("valid constraints");

    let models = DefaultModels {
        profile: &profile,
        runtime: &cloud.compute,
        latency: &cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &dag,
        profile: &profile,
        permitted: &permitted,
        home,
        objective: Objective::Carbon,
        tolerances: Tolerances {
            latency: 0.15,
            cost: 1.0,
            carbon: f64::INFINITY,
        },
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&cloud.pricing),
        models: &models,
        mc_config: MonteCarloConfig::default(),
    };

    // Estimate the home deployment directly.
    let estimator = MonteCarloEstimator {
        dag: &dag,
        profile: &profile,
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&cloud.pricing),
        models: &models,
        home,
        config: MonteCarloConfig::default(),
    };
    let home_plan = DeploymentPlan::uniform(dag.node_count(), home);
    let home_est = estimator.estimate(&home_plan, 12.5, &mut Pcg32::seed(1));
    println!(
        "home deployment:  {:.3e} g, {:.2} s mean latency, ${:.6}/invocation ({} MC samples)",
        home_est.carbon.mean, home_est.latency.mean, home_est.cost.mean, home_est.samples
    );

    // Solve with HBSS and cross-check against the exhaustive optimum.
    let hbss = HbssSolver::new().solve(&ctx, 12.5, &mut Pcg32::seed(2));
    let exact = exhaustive::solve(&ctx, 12.5, &mut Pcg32::seed(3)).expect("small space");
    let single = coarse::solve(&ctx, 12.5, &mut Pcg32::seed(4));
    println!(
        "HBSS best:        {:.3e} g after {} evaluations",
        ctx.metric_of(&hbss.best_estimate),
        hbss.evaluated
    );
    println!(
        "exhaustive best:  {:.3e} g after {} evaluations",
        ctx.metric_of(&exact.best_estimate),
        exact.evaluated
    );
    println!(
        "coarse best:      {:.3e} g after {} evaluations",
        ctx.metric_of(&single.best_estimate),
        single.evaluated
    );
    for node in dag.all_nodes() {
        println!(
            "  {:<12} -> {}",
            dag.node(node).name,
            cloud.regions.name(hbss.best.region_of(node))
        );
    }

    // Execute one real invocation under the chosen plan.
    let app = WorkflowApp {
        name: "fraud_screen".into(),
        dag,
        profile,
        home,
    };
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };
    engine.provision(&mut cloud, &app, &hbss.best);
    let outcome = engine.invoke(
        &mut cloud,
        &app,
        &hbss.best,
        1,
        45_000.0,
        &mut Pcg32::seed(5),
    );
    println!(
        "\none real invocation: {:.2} s end-to-end, {:.3e} g, ${:.6}, {} stages executed",
        outcome.e2e_latency_s,
        outcome.carbon_g(),
        outcome.cost_usd,
        outcome.log.nodes.len()
    );
}
