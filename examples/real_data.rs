//! Bring your own data: run Caribou on carbon CSVs and a trace CSV.
//!
//! The synthetic carbon generator is only a stand-in for Electricity Maps
//! extracts; this example shows the drop-in path: per-region
//! `<region>.csv` files (hour, gCO₂eq/kWh) loaded with
//! `TableSource::from_csv_dir`, and an arrival-time trace loaded with
//! `trace_from_csv`. For the demo the files are generated first — replace
//! the directory with real exports and nothing else changes.
//!
//! Run with: `cargo run --release -p caribou-core --example real_data`

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::manifest::DeploymentManifest;
use caribou_simcloud::cloud::SimCloud;
use caribou_workloads::benchmarks::{rag_data_ingestion, InputSize};
use caribou_workloads::traces::{trace_from_csv, trace_to_csv, uniform_trace};

fn main() {
    let dir = std::env::temp_dir().join(format!("caribou_real_data_{}", std::process::id()));
    let carbon_dir = dir.join("carbon");
    std::fs::create_dir_all(&carbon_dir).expect("temp dir");

    // --- In real use these files come from Electricity Maps / your logs.
    // A day-night pattern for four regions, three days long, plus a
    // pre-history so forecasting has something to train on.
    let hours = 10 * 24;
    let start_hour = -7 * 24;
    let series = |base: f64, amp: f64| -> CarbonSeries {
        let values = (0..hours)
            .map(|h| {
                let hod = ((start_hour + h as i64).rem_euclid(24)) as f64;
                base + amp * (std::f64::consts::TAU * (hod - 19.0) / 24.0).cos()
            })
            .collect();
        CarbonSeries::new(start_hour, values)
    };
    std::fs::write(
        carbon_dir.join("us-east-1.csv"),
        series(380.0, 30.0).to_csv(),
    )
    .unwrap();
    std::fs::write(
        carbon_dir.join("us-west-1.csv"),
        series(355.0, 90.0).to_csv(),
    )
    .unwrap();
    std::fs::write(
        carbon_dir.join("us-west-2.csv"),
        series(370.0, 40.0).to_csv(),
    )
    .unwrap();
    std::fs::write(
        carbon_dir.join("ca-central-1.csv"),
        series(32.0, 2.0).to_csv(),
    )
    .unwrap();
    let demo_trace = uniform_trace(30.0, 2.0 * 86_400.0, 900.0);
    std::fs::write(dir.join("trace.csv"), trace_to_csv(&demo_trace)).unwrap();
    // ---

    // Load the data back exactly as a user with real exports would.
    let cloud = SimCloud::aws(99);
    let carbon = TableSource::from_csv_dir(&carbon_dir, &cloud.regions).expect("carbon CSVs load");
    let trace_csv = std::fs::read_to_string(dir.join("trace.csv")).unwrap();
    let trace = trace_from_csv(&trace_csv).expect("trace CSV loads");
    println!(
        "loaded carbon for {} regions and {} trace arrivals from {}",
        carbon.regions().len(),
        trace.len(),
        dir.display()
    );

    let regions = carbon.regions();
    let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    config.seed = 99;
    let mut caribou = Caribou::new(cloud, carbon, config);

    let bench = rag_data_ingestion(InputSize::Small);
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.15;
    constraints.tolerances.cost = 1.0;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: caribou.cloud.region("us-east-1").unwrap(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
    let idx = caribou.deploy(app, &manifest, constraints).unwrap();
    let report = caribou.run_trace(idx, &trace);

    println!("invocations: {}", report.samples.len());
    println!(
        "plan generations at hours: {:?}",
        report
            .dp_generations
            .iter()
            .map(|t| (t / 3600.0).round())
            .collect::<Vec<_>>()
    );
    let mean = |lo: f64, hi: f64| -> f64 {
        let v: Vec<f64> = report
            .samples
            .iter()
            .filter(|s| s.at_s >= lo && s.at_s < hi && !s.benchmark_traffic)
            .map(|s| s.carbon_g())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "carbon/invocation: {:.3e} g (day 1 start) -> {:.3e} g (day 2 end)",
        mean(0.0, 6.0 * 3600.0),
        mean(1.75 * 86_400.0, 2.0 * 86_400.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}
